// Property-based tests.
//
// The central invariant of the whole system is the paper's transparency claim:
// a pass-through agent (at any toolkit layer, stacked to any depth) must be
// OBSERVATIONALLY INVISIBLE — an arbitrary program run under it produces exactly
// the filesystem state, console output, and exit status it produces bare.
//
// We drive seeded random workloads (mixes of create/write/read/rename/unlink/
// mkdir/symlink/fork/exec/dup/chdir) and compare full filesystem snapshots
// across agent configurations, parameterized over (seed × agent stack).
#include "tests/test_helpers.h"

#include "src/agents/codec.h"
#include "src/agents/txn.h"
#include "src/base/prng.h"
#include "src/base/strings.h"
#include "src/kernel/direntry_codec.h"
#include "src/toolkit/toolkit.h"

namespace ia {
namespace {

using test::MakeWorld;
using test::SnapshotFs;

// --- pass-through agents at each layer ------------------------------------------

class PassNumeric final : public NumericSyscall {
 public:
  std::string name() const override { return "pass_numeric"; }

 protected:
  void init(ProcessContext&) override {
    register_interest_all();
    register_signal_interest_all();
  }
};

class PassSymbolic final : public SymbolicSyscall {
 public:
  std::string name() const override { return "pass_symbolic"; }
};

class PassDescriptor final : public DescriptorSet {
 public:
  std::string name() const override { return "pass_descriptor"; }
};

class PassPathname final : public PathnameSet {
 public:
  std::string name() const override { return "pass_pathname"; }
};

enum class StackKind {
  kNone,
  kNumeric,
  kSymbolic,
  kDescriptor,
  kPathname,
  kStackedThree,
};

std::vector<AgentRef> BuildStack(StackKind kind) {
  switch (kind) {
    case StackKind::kNone:
      return {};
    case StackKind::kNumeric:
      return {std::make_shared<PassNumeric>()};
    case StackKind::kSymbolic:
      return {std::make_shared<PassSymbolic>()};
    case StackKind::kDescriptor:
      return {std::make_shared<PassDescriptor>()};
    case StackKind::kPathname:
      return {std::make_shared<PassPathname>()};
    case StackKind::kStackedThree:
      return {std::make_shared<PassNumeric>(), std::make_shared<PassPathname>(),
              std::make_shared<PassSymbolic>()};
  }
  return {};
}

const char* StackName(StackKind kind) {
  switch (kind) {
    case StackKind::kNone:
      return "none";
    case StackKind::kNumeric:
      return "numeric";
    case StackKind::kSymbolic:
      return "symbolic";
    case StackKind::kDescriptor:
      return "descriptor";
    case StackKind::kPathname:
      return "pathname";
    case StackKind::kStackedThree:
      return "stacked3";
  }
  return "?";
}

// --- the random workload ------------------------------------------------------------

// Runs a deterministic pseudo-random op sequence. Every decision comes from the
// seeded PRNG, so two runs with the same seed perform identical logical work.
int RandomWorkload(ProcessContext& ctx, uint64_t seed, int ops) {
  Prng prng(seed);
  std::vector<std::string> files;
  std::vector<std::string> dirs{"/play"};
  ctx.Mkdir("/play", 0755);
  int open_fd = -1;

  for (int i = 0; i < ops; ++i) {
    const std::string dir = dirs[prng.Below(dirs.size())];
    switch (prng.Below(12)) {
      case 0: {  // create a file
        const std::string p = StringPrintf("%s/f%llu", dir.c_str(),
                                           static_cast<unsigned long long>(prng.Below(50)));
        const int fd = ctx.Open(p, kOCreat | kOWronly, 0644);
        if (fd >= 0) {
          const std::string data(prng.Below(200), static_cast<char>('a' + prng.Below(26)));
          ctx.WriteString(fd, data);
          ctx.Close(fd);
          files.push_back(p);
        }
        break;
      }
      case 1: {  // append to a file
        if (files.empty()) {
          break;
        }
        const std::string& p = files[prng.Below(files.size())];
        const int fd = ctx.Open(p, kOWronly | kOAppend);
        if (fd >= 0) {
          ctx.WriteString(fd, StringPrintf("+%d", i));
          ctx.Close(fd);
        }
        break;
      }
      case 2: {  // read a file
        if (files.empty()) {
          break;
        }
        std::string data;
        ctx.ReadWholeFile(files[prng.Below(files.size())], &data);
        break;
      }
      case 3: {  // mkdir
        const std::string p = StringPrintf("%s/d%llu", dir.c_str(),
                                           static_cast<unsigned long long>(prng.Below(10)));
        if (ctx.Mkdir(p, 0755) == 0) {
          dirs.push_back(p);
        }
        break;
      }
      case 4: {  // rename
        if (files.empty()) {
          break;
        }
        const std::string from = files[prng.Below(files.size())];
        const std::string to = StringPrintf("%s/r%d", dir.c_str(), i);
        if (ctx.Rename(from, to) == 0) {
          files.push_back(to);
        }
        break;
      }
      case 5: {  // unlink
        if (files.empty()) {
          break;
        }
        ctx.Unlink(files[prng.Below(files.size())]);
        break;
      }
      case 6: {  // symlink + readthrough
        if (files.empty()) {
          break;
        }
        const std::string target = files[prng.Below(files.size())];
        const std::string link = StringPrintf("%s/l%d", dir.c_str(), i);
        if (ctx.Symlink(target, link) == 0) {
          std::string data;
          ctx.ReadWholeFile(link, &data);
        }
        break;
      }
      case 7: {  // stat a random name
        ia::Stat st;
        ctx.Stat(StringPrintf("%s/f%llu", dir.c_str(),
                              static_cast<unsigned long long>(prng.Below(50))),
                 &st);
        break;
      }
      case 8: {  // list a directory
        std::vector<std::string> names;
        ctx.ListDirectory(dir, &names);
        break;
      }
      case 9: {  // fork a child doing a small write
        const std::string p = StringPrintf("%s/c%d", dir.c_str(), i);
        const Pid child = ctx.Fork([p](ProcessContext& c) {
          c.WriteWholeFile(p, "child was here");
          return 0;
        });
        if (child > 0) {
          int status = 0;
          ctx.Wait4(child, &status, 0, nullptr);
          files.push_back(p);
        }
        break;
      }
      case 10: {  // exec a coreutil via the shell path
        int status = 0;
        ctx.Spawn("/bin/true", {"true"}, &status);
        break;
      }
      case 11: {  // dup games on a persistent descriptor
        if (open_fd < 0) {
          open_fd = ctx.Open("/etc/motd", kORdonly);
        } else {
          const int d = ctx.Dup(open_fd);
          char b;
          ctx.Read(d, &b, 1);
          ctx.Close(d);
        }
        break;
      }
    }
  }
  // Deterministic summary output so console transcripts are comparable.
  std::vector<std::string> names;
  ctx.ListDirectory("/play", &names);
  ctx.WriteString(1, StringPrintf("entries=%zu\n", names.size()));
  return 0;
}

struct TransparencyParam {
  uint64_t seed;
  StackKind stack;
};

class TransparencyTest : public ::testing::TestWithParam<TransparencyParam> {};

TEST_P(TransparencyTest, AgentStacksAreObservationallyInvisible) {
  const TransparencyParam& param = GetParam();

  // Reference run: bare kernel.
  auto reference = MakeWorld();
  SpawnOptions ref_spawn;
  ref_spawn.body = [&param](ProcessContext& ctx) {
    return RandomWorkload(ctx, param.seed, 120);
  };
  const Pid ref_pid = reference->Spawn(ref_spawn);
  const int ref_status = reference->HostWaitPid(ref_pid);
  const auto ref_snapshot = SnapshotFs(*reference);
  const std::string ref_console = reference->console().transcript();

  // Interposed run.
  auto subject = MakeWorld();
  SpawnOptions spawn;
  spawn.body = [&param](ProcessContext& ctx) {
    return RandomWorkload(ctx, param.seed, 120);
  };
  const int status = param.stack == StackKind::kNone
                         ? subject->HostWaitPid(subject->Spawn(spawn))
                         : RunUnderAgents(*subject, BuildStack(param.stack), spawn);
  const auto snapshot = SnapshotFs(*subject);

  EXPECT_EQ(status, ref_status);
  EXPECT_EQ(subject->console().transcript(), ref_console);
  EXPECT_EQ(snapshot.size(), ref_snapshot.size());
  for (const auto& [p, v] : ref_snapshot) {
    auto it = snapshot.find(p);
    if (it == snapshot.end()) {
      ADD_FAILURE() << "missing under agent: " << p;
      continue;
    }
    EXPECT_EQ(it->second, v) << p;
  }
}

std::vector<TransparencyParam> AllTransparencyParams() {
  std::vector<TransparencyParam> params;
  for (const uint64_t seed : {11ull, 22ull, 33ull, 44ull}) {
    for (const StackKind stack :
         {StackKind::kNumeric, StackKind::kSymbolic, StackKind::kDescriptor,
          StackKind::kPathname, StackKind::kStackedThree}) {
      params.push_back({seed, stack});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Sweep, TransparencyTest,
                         ::testing::ValuesIn(AllTransparencyParams()),
                         [](const ::testing::TestParamInfo<TransparencyParam>& param_info) {
                           return StringPrintf(
                               "seed%llu_%s",
                               static_cast<unsigned long long>(param_info.param.seed),
                               StackName(param_info.param.stack));
                         });

// --- dirent codec round-trip property -------------------------------------------------

class DirentCodecProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DirentCodecProperty, EncodeDecodeRoundTrips) {
  Prng prng(GetParam());
  const int count = 1 + static_cast<int>(prng.Below(40));
  std::vector<std::pair<Ino, std::string>> entries;
  for (int i = 0; i < count; ++i) {
    std::string entry_name;
    const size_t len = 1 + prng.Below(60);
    for (size_t c = 0; c < len; ++c) {
      entry_name.push_back(static_cast<char>('!' + prng.Below(90)));
    }
    entries.emplace_back(prng.Next() & 0xffffffff, entry_name);
  }
  std::vector<char> buf(static_cast<size_t>(count) * 96);
  size_t used = 0;
  for (const auto& [ino, entry_name] : entries) {
    ASSERT_TRUE(EncodeDirent(ino, entry_name, buf.data(), buf.size(), &used));
  }
  const std::vector<Dirent> decoded = DecodeDirents(buf.data(), used);
  ASSERT_EQ(decoded.size(), entries.size());
  for (size_t i = 0; i < decoded.size(); ++i) {
    EXPECT_EQ(decoded[i].d_ino, entries[i].first);
    EXPECT_EQ(decoded[i].d_name, entries[i].second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirentCodecProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- codec round-trip property ---------------------------------------------------------

struct CodecParam {
  uint64_t seed;
  bool use_rle;
};

class CodecProperty : public ::testing::TestWithParam<CodecParam> {};

TEST_P(CodecProperty, RandomBytesRoundTrip) {
  const CodecParam& param = GetParam();
  Prng prng(param.seed);
  std::string plain;
  const size_t len = prng.Below(5000);
  for (size_t i = 0; i < len; ++i) {
    // Mix runs and noise.
    if (prng.Below(4) == 0) {
      plain.append(prng.Below(200), static_cast<char>(prng.Next() & 0xff));
    } else {
      plain.push_back(static_cast<char>(prng.Next() & 0xff));
    }
  }
  std::unique_ptr<ByteCodec> codec;
  if (param.use_rle) {
    codec = std::make_unique<RleCodec>();
  } else {
    codec = std::make_unique<XorCodec>(param.seed * 2654435761u);
  }
  std::string decoded;
  ASSERT_EQ(codec->Decode(codec->Encode(plain), &decoded), 0);
  EXPECT_EQ(decoded, plain);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, CodecProperty,
    ::testing::Values(CodecParam{101, true}, CodecParam{102, true}, CodecParam{103, true},
                      CodecParam{104, true}, CodecParam{201, false}, CodecParam{202, false},
                      CodecParam{203, false}, CodecParam{204, false}),
    [](const ::testing::TestParamInfo<CodecParam>& param_info) {
      return StringPrintf("%s_seed%llu", param_info.param.use_rle ? "rle" : "xor",
                          static_cast<unsigned long long>(param_info.param.seed));
    });

// --- txn commit property -----------------------------------------------------------------

// Property: for any random workload W, (run W under txn; commit) produces the
// same final base filesystem as running W bare — i.e. commit loses nothing.
class TxnCommitProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TxnCommitProperty, CommitEqualsBareExecution) {
  const uint64_t seed = GetParam();
  // Restrict the workload to pathname ops under /play (no fork/exec noise).
  const auto workload = [seed](ProcessContext& ctx) {
    Prng prng(seed);
    ctx.Mkdir("/play", 0755);
    std::vector<std::string> files;
    for (int i = 0; i < 60; ++i) {
      switch (prng.Below(5)) {
        case 0: {
          const std::string p =
              StringPrintf("/play/f%llu", static_cast<unsigned long long>(prng.Below(12)));
          ctx.WriteWholeFile(p, StringPrintf("v%d", i));
          files.push_back(p);
          break;
        }
        case 1:
          if (!files.empty()) {
            ctx.Unlink(files[prng.Below(files.size())]);
          }
          break;
        case 2: {
          const std::string p =
              StringPrintf("/play/d%llu", static_cast<unsigned long long>(prng.Below(4)));
          ctx.Mkdir(p, 0755);
          break;
        }
        case 3:
          if (!files.empty()) {
            const std::string to = StringPrintf("/play/m%d", i);
            if (ctx.Rename(files[prng.Below(files.size())], to) == 0) {
              files.push_back(to);
            }
          }
          break;
        case 4:
          if (!files.empty()) {
            std::string data;
            ctx.ReadWholeFile(files[prng.Below(files.size())], &data);
          }
          break;
      }
    }
    return 0;
  };

  auto bare = MakeWorld();
  test::RunBody(*bare, workload);
  const auto bare_snapshot = SnapshotFs(*bare, "/tmp");

  auto transacted = MakeWorld();
  auto txn = std::make_shared<TxnAgent>("/play", "/tmp/.txn");
  SpawnOptions spawn;
  spawn.body = [&](ProcessContext& ctx) {
    workload(ctx);
    txn->Commit(ctx);
    return 0;
  };
  const int status = RunUnderAgents(*transacted, {txn}, spawn);
  EXPECT_EQ(WExitStatus(status), 0);
  const auto txn_snapshot = SnapshotFs(*transacted, "/tmp");

  EXPECT_EQ(txn_snapshot, bare_snapshot) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TxnCommitProperty,
                         ::testing::Values(7, 17, 27, 37, 47, 57));

}  // namespace
}  // namespace ia
