// The submission/completion ring plane and its supporting refactors: the
// SyscallRing SPSC queues, DrainRing's batched kernel-lane trap and
// agent-routed fallbacks, the determinism gates (ring-submitted batches are
// result- and ktrace- and fault-stream-identical to synchronous issue), the
// aggregated RouteStats() counters, the striped VFS tree lock under
// concurrent clients, and the FdTable leaf mutex.
#include "tests/test_helpers.h"

#include <atomic>
#include <cstring>
#include <thread>

#include "src/apps/batch.h"
#include "src/base/strings.h"
#include "src/kernel/fdtable.h"
#include "src/kernel/ktrace.h"
#include "src/kernel/ring.h"

namespace ia {
namespace {

using test::ExitCodeOf;
using test::FileContents;
using test::MakeWorld;
using test::RunBody;
using test::RunBodyUnder;

// --- SyscallRing unit tests --------------------------------------------------

SyscallRequest GetpidReq(uint64_t tag) {
  SyscallRequest req;
  req.number = kSysGetpid;
  req.user_data = tag;
  return req;
}

TEST(RingUnit, RoundTripPreservesFifoOrderAndCookies) {
  SyscallRing ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (uint64_t tag = 1; tag <= 3; ++tag) {
    EXPECT_TRUE(ring.Submit(GetpidReq(tag)));
  }
  EXPECT_EQ(ring.SubmissionsPending(), 3u);
  EXPECT_EQ(ring.InFlight(), 3u);

  SyscallRequest req;
  for (uint64_t tag = 1; tag <= 3; ++tag) {
    ASSERT_TRUE(ring.PopRequest(&req));
    EXPECT_EQ(req.user_data, tag);
    SyscallCompletion comp;
    comp.user_data = req.user_data;
    comp.status = 42;
    ring.PushCompletion(comp);
  }
  EXPECT_FALSE(ring.PopRequest(&req));
  EXPECT_EQ(ring.CompletionsPending(), 3u);

  SyscallCompletion comp;
  for (uint64_t tag = 1; tag <= 3; ++tag) {
    ASSERT_TRUE(ring.Reap(&comp));
    EXPECT_EQ(comp.user_data, tag);
    EXPECT_EQ(comp.status, 42);
  }
  EXPECT_FALSE(ring.Reap(&comp));
  EXPECT_EQ(ring.InFlight(), 0u);
}

TEST(RingUnit, CapacityCountsInFlightNotJustQueued) {
  SyscallRing ring(4);
  for (uint64_t tag = 0; tag < 4; ++tag) {
    ASSERT_TRUE(ring.Submit(GetpidReq(tag)));
  }
  // Full: the 5th entry is refused.
  EXPECT_FALSE(ring.Submit(GetpidReq(99)));

  // Draining a request to the completion queue does NOT free space — the
  // reservation guarantees PushCompletion always has room, so only reaping
  // releases it.
  SyscallRequest req;
  ASSERT_TRUE(ring.PopRequest(&req));
  SyscallCompletion comp;
  comp.user_data = req.user_data;
  ring.PushCompletion(comp);
  EXPECT_FALSE(ring.Submit(GetpidReq(99)));

  ASSERT_TRUE(ring.Reap(&comp));
  EXPECT_TRUE(ring.Submit(GetpidReq(99)));
}

TEST(RingUnit, SubmitBatchAcceptsExactlyTheRoom) {
  SyscallRing ring(2);
  SyscallRequest reqs[5];
  for (uint64_t tag = 0; tag < 5; ++tag) {
    reqs[tag] = GetpidReq(tag);
  }
  EXPECT_EQ(ring.SubmitBatch(reqs, 5), 2u);
  EXPECT_EQ(ring.SubmitBatch(reqs + 2, 3), 0u);
  SyscallRequest req;
  ASSERT_TRUE(ring.PopRequest(&req));
  EXPECT_EQ(req.user_data, 0u);
}

TEST(RingUnit, EntriesRoundUpToPowerOfTwo) {
  EXPECT_EQ(SyscallRing(1).capacity(), 2u);
  EXPECT_EQ(SyscallRing(3).capacity(), 4u);
  EXPECT_EQ(SyscallRing(8).capacity(), 8u);
  EXPECT_EQ(SyscallRing(100).capacity(), 128u);
}

// --- the drain path ----------------------------------------------------------

TEST(Ring, DrainCompletesInSubmissionOrder) {
  auto kernel = MakeWorld();
  const int code = ExitCodeOf(*kernel, [](ProcessContext& ctx) {
    ctx.WriteWholeFile("/tmp/ringd", "x");
    ia::Stat st{};
    SyscallRequest reqs[4];
    reqs[0] = GetpidReq(10);
    reqs[1].number = kSysStat;
    reqs[1].user_data = 11;
    reqs[1].args.SetPtr(0, "/tmp/ringd");
    reqs[1].args.SetPtr(1, &st);
    reqs[2] = GetpidReq(12);
    reqs[3].number = kSysStat;
    reqs[3].user_data = 13;
    reqs[3].args.SetPtr(0, "/absent");
    reqs[3].args.SetPtr(1, &st);

    ctx.Ring(8);
    if (ctx.SubmitBatch(reqs, 4) != 4) {
      return 1;
    }
    if (ctx.DrainRing() != 4) {
      return 2;
    }
    SyscallCompletion comps[4];
    if (ctx.ReapBatch(comps, 4) != 4) {
      return 3;
    }
    const Pid self = ctx.Getpid();
    if (comps[0].user_data != 10 || comps[0].status != 0 || comps[0].result.rv[0] != self) {
      return 4;
    }
    if (comps[1].user_data != 11 || comps[1].status != 0) {
      return 5;
    }
    if (comps[2].user_data != 12 || comps[2].status != 0 || comps[2].result.rv[0] != self) {
      return 6;
    }
    if (comps[3].user_data != 13 || comps[3].status != -kENoent) {
      return 7;
    }
    return 0;
  });
  EXPECT_EQ(code, 0);
}

// A counting frame interested in getpid, for the agent-lane tests.
class CountingFrame final : public SyscallHandler {
 public:
  SyscallStatus HandleSyscall(ProcessContext& ctx, int frame, int number,
                              const SyscallArgs& args, SyscallResult* rv) override {
    hits.fetch_add(1, std::memory_order_relaxed);
    return ctx.SyscallBelow(frame, number, args, rv);
  }
  void HandleSignal(ProcessContext& ctx, int frame, int signo) override {
    ctx.ForwardSignal(frame, signo);
  }

  std::atomic<int64_t> hits{0};
};

TEST(Ring, AgentRoutedEntriesTraverseTheEmulationStack) {
  // Ring entries whose number has an interested frame must run through the
  // compiled route exactly like synchronous calls; kernel-lane entries around
  // them still batch, and completion order stays submission order.
  auto kernel = MakeWorld();
  auto counter = std::make_shared<CountingFrame>();
  const int code = ExitCodeOf(*kernel, [counter](ProcessContext& ctx) {
    ctx.WriteWholeFile("/tmp/ringa", "x");
    EmulationFrame frame;
    frame.handler = counter;
    frame.syscall_interest.set(kSysGetpid);
    ctx.PushEmulation(std::move(frame));

    ia::Stat st{};
    SyscallRequest reqs[6];
    for (uint64_t i = 0; i < 6; ++i) {
      if (i % 2 == 0) {
        reqs[i] = GetpidReq(i);  // agent lane
      } else {
        reqs[i].number = kSysStat;  // kernel lane
        reqs[i].user_data = i;
        reqs[i].args.SetPtr(0, "/tmp/ringa");
        reqs[i].args.SetPtr(1, &st);
      }
    }
    ctx.Ring(8);
    if (ctx.SubmitBatch(reqs, 6) != 6 || ctx.DrainRing() != 6) {
      return 1;
    }
    SyscallCompletion comps[6];
    if (ctx.ReapBatch(comps, 6) != 6) {
      return 2;
    }
    for (uint64_t i = 0; i < 6; ++i) {
      if (comps[i].user_data != i || comps[i].status < 0) {
        return 3;
      }
    }
    ctx.PopEmulation();
    return counter->hits.load() == 3 ? 0 : 4;
  });
  EXPECT_EQ(code, 0);
}

TEST(Ring, BatchClientSplitsOversizedBatches) {
  auto kernel = MakeWorld();
  const int code = ExitCodeOf(*kernel, [](ProcessContext& ctx) {
    BatchClient batch(ctx, /*ring_entries=*/8);
    constexpr int kCalls = 100;
    for (int i = 0; i < kCalls; ++i) {
      batch.PushGetpid(static_cast<uint64_t>(i));
    }
    if (batch.Flush() != kCalls) {
      return 1;
    }
    const Pid self = ctx.Getpid();
    for (int i = 0; i < kCalls; ++i) {
      const SyscallCompletion& c = batch.completions()[static_cast<size_t>(i)];
      if (c.user_data != static_cast<uint64_t>(i) || c.status != 0 ||
          c.result.rv[0] != self) {
        return 2;
      }
    }
    return 0;
  });
  EXPECT_EQ(code, 0);
}

TEST(Ring, RingloadProgramExitsClean) {
  auto kernel = MakeWorld();
  SpawnOptions options;
  options.path = "/usr/bin/ringload";
  options.argv = {"ringload", "/tmp", "8"};
  const Pid pid = kernel->Spawn(options);
  ASSERT_GT(pid, 0);
  const int status = kernel->HostWaitPid(pid);
  ASSERT_TRUE(WifExited(status));
  EXPECT_EQ(WExitStatus(status), 0);
}

// --- determinism gates: ring vs synchronous ---------------------------------

// The mixed per-iteration workload both variants issue: open (synchronous —
// its fd feeds the fd-keyed entries), then stat/fstat/lseek/read/getpid/close.
// Returns a digest line per call: "number:status:rv0".
std::string RunMixedWorkload(ProcessContext& ctx, bool via_ring, int iterations) {
  const std::string file = "/tmp/mixed.dat";
  std::string payload(512, '\0');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>('A' + i % 23);
  }
  ctx.WriteWholeFile(file, payload);

  std::string digest;
  char buf[128];
  ia::Stat st{};
  ia::Stat fst{};
  for (int it = 0; it < iterations; ++it) {
    const int fd = ctx.Open(file, kORdonly);
    if (fd < 0) {
      digest += StringPrintf("open:%d\n", fd);
      continue;
    }
    SyscallRequest reqs[6];
    reqs[0].number = kSysStat;
    reqs[0].args.SetPtr(0, file.c_str());
    reqs[0].args.SetPtr(1, &st);
    reqs[1].number = kSysFstat;
    reqs[1].args.SetInt(0, fd);
    reqs[1].args.SetPtr(1, &fst);
    reqs[2].number = kSysLseek;
    reqs[2].args.SetInt(0, fd);
    reqs[2].args.SetInt(1, static_cast<int64_t>(it % 64));
    reqs[2].args.SetInt(2, kSeekSet);
    reqs[3].number = kSysRead;
    reqs[3].args.SetInt(0, fd);
    reqs[3].args.SetPtr(1, buf);
    reqs[3].args.SetInt(2, static_cast<int64_t>(sizeof(buf)));
    reqs[4].number = kSysGetpid;
    reqs[5].number = kSysClose;
    reqs[5].args.SetInt(0, fd);

    if (via_ring) {
      ctx.Ring(8);
      ctx.SubmitBatch(reqs, 6);
      ctx.DrainRing();
      SyscallCompletion comps[6];
      const uint32_t reaped = ctx.ReapBatch(comps, 6);
      for (uint32_t i = 0; i < reaped; ++i) {
        digest += StringPrintf("%d:%lld:%lld\n", reqs[i].number,
                               static_cast<long long>(comps[i].status),
                               static_cast<long long>(comps[i].result.rv[0]));
      }
    } else {
      for (const SyscallRequest& req : reqs) {
        SyscallResult rv;
        const SyscallStatus status = ctx.Syscall(req.number, req.args, &rv);
        digest += StringPrintf("%d:%lld:%lld\n", req.number, static_cast<long long>(status),
                               static_cast<long long>(rv.rv[0]));
      }
    }
  }
  return digest;
}

// A frame pushed raw onto the emulation stack (EmulationStack::Push, null
// health) runs UNCONTAINED — an exception out of it mid-drain must poison only
// its own entry (error completion, in-flight slot released), never the ring.
class ThrowingFrame final : public SyscallHandler {
 public:
  SyscallStatus HandleSyscall(ProcessContext& ctx, int frame, int number,
                              const SyscallArgs& args, SyscallResult* rv) override {
    if (number == kSysGetpid) {
      throw std::runtime_error("poisoned entry");
    }
    return ctx.SyscallBelow(frame, number, args, rv);
  }
  void HandleSignal(ProcessContext& ctx, int frame, int signo) override {
    ctx.ForwardSignal(frame, signo);
  }
};

TEST(Ring, UncontainedFrameThrowMidDrainPoisonsOnlyItsEntry) {
  auto kernel = MakeWorld();
  const int code = ExitCodeOf(*kernel, [](ProcessContext& ctx) {
    ctx.WriteWholeFile("/tmp/ringp", "x");
    EmulationFrame frame;
    frame.handler = std::make_shared<ThrowingFrame>();
    frame.syscall_interest.set(kSysGetpid);
    ctx.emulation().Push(std::move(frame));  // raw push: no health, no trap

    ia::Stat st{};
    SyscallRequest reqs[3];
    reqs[0].number = kSysStat;
    reqs[0].user_data = 0;
    reqs[0].args.SetPtr(0, "/tmp/ringp");
    reqs[0].args.SetPtr(1, &st);
    reqs[1] = GetpidReq(1);  // the poisoned entry
    reqs[2].number = kSysStat;
    reqs[2].user_data = 2;
    reqs[2].args.SetPtr(0, "/tmp/ringp");
    reqs[2].args.SetPtr(1, &st);

    SyscallRing& ring = ctx.Ring(8);
    if (ctx.SubmitBatch(reqs, 3) != 3 || ctx.DrainRing() != 3) {
      return 1;  // the drain must complete all three, not stall at the throw
    }
    SyscallCompletion comps[3];
    if (ctx.ReapBatch(comps, 3) != 3) {
      return 2;
    }
    if (comps[0].user_data != 0 || comps[0].status != 0) {
      return 3;
    }
    if (comps[1].user_data != 1 || comps[1].status != -kEIo) {
      return 4;  // the error completion, not a leaked in_flight_ slot
    }
    if (comps[2].user_data != 2 || comps[2].status != 0) {
      return 5;
    }
    if (ring.InFlight() != 0) {
      return 6;  // a leak here would wedge the ring once capacity is reached
    }
    ctx.emulation().Pop();
    // The ring stays usable after the poisoned entry.
    SyscallRequest again = GetpidReq(7);
    if (ctx.SubmitBatch(&again, 1) != 1 || ctx.DrainRing() != 1) {
      return 7;
    }
    SyscallCompletion comp;
    if (ctx.ReapBatch(&comp, 1) != 1 || comp.status != 0 || comp.result.rv[0] <= 0) {
      return 8;
    }
    return 0;
  });
  EXPECT_EQ(code, 0);
}

TEST(RingDeterminism, BatchResultsIdenticalToSynchronousIssue) {
  std::string digests[2];
  for (int run = 0; run < 2; ++run) {
    auto kernel = MakeWorld();
    std::string digest;
    const int code = ExitCodeOf(*kernel, [&digest, run](ProcessContext& ctx) {
      digest = RunMixedWorkload(ctx, /*via_ring=*/run == 1, /*iterations=*/12);
      return 0;
    });
    EXPECT_EQ(code, 0);
    digests[run] = digest;
  }
  EXPECT_FALSE(digests[0].empty());
  EXPECT_EQ(digests[0], digests[1]);
}

std::string KtraceDigest(const VectorKtraceSink& sink) {
  std::string digest;
  for (const KtraceRecord& r : sink.records()) {
    digest += StringPrintf("%d:%d:%lld:%d:%s:%lld\n", r.pid, r.syscall,
                           static_cast<long long>(r.result), r.fd, r.path.c_str(),
                           static_cast<long long>(r.vtime_usec));
  }
  return digest;
}

TEST(RingDeterminism, KtraceDigestIdenticalToSynchronousIssue) {
  // With a sink attached the batch trap falls back to the exact per-call
  // path, so the trace — pids, paths, results, fds, even virtual timestamps —
  // must be byte-identical between ring and synchronous issue.
  std::string results[2];
  std::string traces[2];
  for (int run = 0; run < 2; ++run) {
    auto kernel = MakeWorld();
    VectorKtraceSink sink;
    kernel->SetKtrace(&sink);
    std::string digest;
    const int code = ExitCodeOf(*kernel, [&digest, run](ProcessContext& ctx) {
      digest = RunMixedWorkload(ctx, /*via_ring=*/run == 1, /*iterations=*/10);
      return 0;
    });
    kernel->SetKtrace(nullptr);
    EXPECT_EQ(code, 0);
    results[run] = digest;
    traces[run] = KtraceDigest(sink);
  }
  EXPECT_FALSE(traces[0].empty());
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(traces[0], traces[1]);
}

TEST(RingDeterminism, FaultStreamIdenticalToSynchronousIssue) {
  // An installed FaultPlan keys every decision on (seed, pid, sequence,
  // number); the ring path must consume the identical sequence, so statuses,
  // injected errors, and the recorded fault trace all match synchronous
  // issue byte for byte.
  std::string results[2];
  std::string traces[2];
  for (int run = 0; run < 2; ++run) {
    auto kernel = MakeWorld();
    FaultPlan plan;
    plan.seed = 0x0ab5;
    plan.eintr_probability = 0.2;
    plan.short_probability = 0.4;
    plan.class_rules.push_back({kTakesPath, 0.2, kENoent});
    plan.record_trace = true;
    kernel->SetFaultPlan(plan);
    std::string digest;
    const int code = ExitCodeOf(*kernel, [&digest, run](ProcessContext& ctx) {
      digest = RunMixedWorkload(ctx, /*via_ring=*/run == 1, /*iterations=*/30);
      return 0;
    });
    EXPECT_EQ(code, 0);
    results[run] = digest;
    traces[run] = kernel->FaultTraceText();
  }
  EXPECT_FALSE(traces[0].empty());
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(traces[0], traces[1]);
}

// --- RouteStats() ------------------------------------------------------------

TEST(RouteStats, StartsZeroAndAggregatesAtProcessExit) {
  auto kernel = MakeWorld();
  const Kernel::RouteCacheStats before = kernel->RouteStats();
  EXPECT_EQ(before.lookups, 0);
  EXPECT_EQ(before.builds, 0);

  constexpr int kCalls = 50;
  const int code = ExitCodeOf(*kernel, [](ProcessContext& ctx) {
    for (int i = 0; i < kCalls; ++i) {
      ctx.Getpid();
    }
    return 0;
  });
  EXPECT_EQ(code, 0);

  // The exit path folded the process's counters into the kernel tallies:
  // one lookup per call, but only the first compiled a route, so the
  // steady-state hit rate is high.
  const Kernel::RouteCacheStats after = kernel->RouteStats();
  EXPECT_GE(after.lookups, kCalls);
  EXPECT_GE(after.builds, 1);
  EXPECT_LE(after.builds, after.lookups);
  const double hit_rate =
      1.0 - static_cast<double>(after.builds) / static_cast<double>(after.lookups);
  EXPECT_GE(hit_rate, 0.8);
}

TEST(RouteStats, PushPopChurnForcesOneRebuildPerGeneration) {
  auto kernel = MakeWorld();
  auto counter = std::make_shared<CountingFrame>();
  int64_t in_body_lookups = 0;
  int64_t in_body_builds = 0;
  const int code = ExitCodeOf(*kernel, [&, counter](ProcessContext& ctx) {
    // Steady phase: many lookups, at most one build for this number.
    ctx.Getpid();  // compile the route once
    const int64_t l0 = ctx.emulation().route_lookups();
    const int64_t b0 = ctx.emulation().route_builds();
    for (int i = 0; i < 20; ++i) {
      ctx.Getpid();
    }
    if (ctx.emulation().route_lookups() - l0 != 20) {
      return 1;
    }
    if (ctx.emulation().route_builds() != b0) {
      return 2;  // steady-state calls must all be cache hits
    }

    // Churn phase: every push and every pop bumps the generation, so the
    // first lookup after each is a miss that recompiles. The routed call
    // itself performs two lookups (dispatch entry + the frame's
    // SyscallBelow continuation), the second of which hits the fresh route.
    const int64_t l1 = ctx.emulation().route_lookups();
    const int64_t b1 = ctx.emulation().route_builds();
    constexpr int kChurn = 10;
    for (int i = 0; i < kChurn; ++i) {
      EmulationFrame frame;
      frame.handler = counter;
      frame.syscall_interest.set(kSysGetpid);
      ctx.PushEmulation(std::move(frame));
      ctx.Getpid();
      ctx.PopEmulation();
      ctx.Getpid();
    }
    if (ctx.emulation().route_lookups() - l1 != 3 * kChurn) {
      return 3;
    }
    if (ctx.emulation().route_builds() - b1 != 2 * kChurn) {
      return 4;  // one rebuild per generation bump, no more
    }
    in_body_lookups = ctx.emulation().route_lookups();
    in_body_builds = ctx.emulation().route_builds();
    return 0;
  });
  EXPECT_EQ(code, 0);
  EXPECT_EQ(counter->hits.load(), 10);

  // Exit-time aggregation preserves (at least) what the body observed.
  const Kernel::RouteCacheStats stats = kernel->RouteStats();
  EXPECT_GE(stats.lookups, in_body_lookups);
  EXPECT_GE(stats.builds, in_body_builds);
  EXPECT_LE(stats.builds, stats.lookups);
}

TEST(RouteStats, ForkAccumulatesBothProcessesCounters) {
  auto kernel = MakeWorld();
  constexpr int kParentCalls = 20;
  constexpr int kChildCalls = 30;
  const int code = ExitCodeOf(*kernel, [](ProcessContext& ctx) {
    for (int i = 0; i < kParentCalls; ++i) {
      ctx.Getpid();
    }
    const Pid child = ctx.Fork([](ProcessContext& cc) {
      for (int i = 0; i < kChildCalls; ++i) {
        cc.Getpid();
      }
      return 0;
    });
    int status = 0;
    ctx.Wait4(child, &status, 0, nullptr);
    return WExitStatus(status);
  });
  EXPECT_EQ(code, 0);

  // Both processes' counters landed in the kernel aggregate; the child's
  // stack starts empty (agents re-install via the wrapped body), so it
  // compiled its own routes — builds reflects at least two processes.
  const Kernel::RouteCacheStats stats = kernel->RouteStats();
  EXPECT_GE(stats.lookups, kParentCalls + kChildCalls);
  EXPECT_GE(stats.builds, 2);
  EXPECT_LE(stats.builds, stats.lookups);
}

// --- concurrency stress (TSan targets) ---------------------------------------

TEST(RingStress, SiblingSubmitterWhileOwnerDrains) {
  // The documented split arrangement: one sibling host thread owns the
  // submission side while the process thread drains and reaps. The SPSC
  // atomics must hand entries across cleanly and in order.
  auto kernel = MakeWorld();
  const int code = ExitCodeOf(*kernel, [](ProcessContext& ctx) {
    constexpr int kTotal = 500;
    SyscallRing& ring = ctx.Ring(16);
    std::thread submitter([&ring]() {
      for (int i = 0; i < kTotal; ++i) {
        SyscallRequest req = GetpidReq(static_cast<uint64_t>(i));
        while (!ring.Submit(req)) {
          std::this_thread::yield();
        }
      }
    });
    const Pid self = ctx.Getpid();
    int reaped = 0;
    int bad = 0;
    SyscallCompletion comp;
    while (reaped < kTotal) {
      ctx.DrainRing();
      while (ctx.Reap(&comp)) {
        if (comp.user_data != static_cast<uint64_t>(reaped) || comp.status != 0 ||
            comp.result.rv[0] != self) {
          ++bad;
        }
        ++reaped;
      }
      std::this_thread::yield();
    }
    submitter.join();
    return bad == 0 ? 0 : 1;
  });
  EXPECT_EQ(code, 0);
}

TEST(StripeStress, ParallelReadersAcrossDirectorySubtrees) {
  // Eight clients hammer the shared-stripe VFS read path against their own
  // subtrees (distinct stripes by path hash) plus one shared file. Under
  // TSan this validates the striped lock order; the assertions validate that
  // striping didn't change what readers see.
  auto kernel = MakeWorld();
  constexpr int kClients = 8;
  constexpr int kIters = 150;
  const std::string payload(256, 'p');
  const int setup = ExitCodeOf(*kernel, [&payload](ProcessContext& ctx) {
    ctx.Mkdir("/data");
    ctx.WriteWholeFile("/data/shared.dat", payload);
    for (int c = 0; c < kClients; ++c) {
      ctx.Mkdir(StringPrintf("/data/c%d", c));
      ctx.WriteWholeFile(StringPrintf("/data/c%d/f.dat", c), payload);
    }
    return 0;
  });
  ASSERT_EQ(setup, 0);

  std::vector<Pid> pids;
  for (int c = 0; c < kClients; ++c) {
    SpawnOptions options;
    options.body = [c, &payload](ProcessContext& ctx) {
      const std::string mine = StringPrintf("/data/c%d/f.dat", c);
      char buf[256];
      ia::Stat st{};
      for (int i = 0; i < kIters; ++i) {
        if (ctx.Stat(mine, &st) != 0 || st.st_size != static_cast<Off>(payload.size())) {
          return 1;
        }
        const int fd = ctx.Open(i % 4 == 0 ? "/data/shared.dat" : mine, kORdonly);
        if (fd < 0) {
          return 2;
        }
        if (ctx.Read(fd, buf, sizeof(buf)) != static_cast<int64_t>(sizeof(buf))) {
          return 3;
        }
        if (ctx.Fstat(fd, &st) != 0) {
          return 4;
        }
        ctx.Close(fd);
      }
      return 0;
    };
    const Pid pid = kernel->Spawn(options);
    ASSERT_GT(pid, 0);
    pids.push_back(pid);
  }
  for (const Pid pid : pids) {
    const int status = kernel->HostWaitPid(pid);
    ASSERT_TRUE(WifExited(status));
    EXPECT_EQ(WExitStatus(status), 0);
  }
}

TEST(StripeStress, ReadersScanWhileWritersChurnTheTree) {
  // Shared single-stripe readers racing exclusive all-stripe writers
  // (create/unlink churn). Correctness: readers of the stable file never see
  // a torn result, and the churned files resolve to a consistent final state.
  auto kernel = MakeWorld();
  const std::string payload(128, 's');
  const int setup = ExitCodeOf(*kernel, [&payload](ProcessContext& ctx) {
    ctx.Mkdir("/mix");
    ctx.WriteWholeFile("/mix/stable.dat", payload);
    return 0;
  });
  ASSERT_EQ(setup, 0);

  std::vector<Pid> pids;
  for (int r = 0; r < 4; ++r) {
    SpawnOptions options;
    options.body = [&payload](ProcessContext& ctx) {
      char buf[128];
      ia::Stat st{};
      for (int i = 0; i < 150; ++i) {
        if (ctx.Stat("/mix/stable.dat", &st) != 0 ||
            st.st_size != static_cast<Off>(payload.size())) {
          return 1;
        }
        const int fd = ctx.Open("/mix/stable.dat", kORdonly);
        if (fd < 0 || ctx.Read(fd, buf, sizeof(buf)) != static_cast<int64_t>(sizeof(buf))) {
          return 2;
        }
        ctx.Close(fd);
        ctx.Access(StringPrintf("/mix/churn%d", i % 8), 0);  // may or may not exist
      }
      return 0;
    };
    pids.push_back(kernel->Spawn(options));
    ASSERT_GT(pids.back(), 0);
  }
  for (int w = 0; w < 2; ++w) {
    SpawnOptions options;
    options.body = [w](ProcessContext& ctx) {
      for (int i = 0; i < 100; ++i) {
        const std::string path = StringPrintf("/mix/churn%d", (w * 4 + i) % 8);
        ctx.WriteWholeFile(path, "c");
        ctx.Unlink(path);
      }
      ctx.WriteWholeFile(StringPrintf("/mix/final%d", w), "done");
      return 0;
    };
    pids.push_back(kernel->Spawn(options));
    ASSERT_GT(pids.back(), 0);
  }
  for (const Pid pid : pids) {
    const int status = kernel->HostWaitPid(pid);
    ASSERT_TRUE(WifExited(status));
    EXPECT_EQ(WExitStatus(status), 0);
  }
  EXPECT_EQ(FileContents(*kernel, "/mix/final0"), "done");
  EXPECT_EQ(FileContents(*kernel, "/mix/final1"), "done");
}

TEST(TreeLock, StripeCountClampsAndRoundsToPowerOfTwo) {
  TreeLock lock;
  EXPECT_EQ(lock.stripe_count(), TreeLock::kDefaultStripes);
  lock.SetStripeCount(0);
  EXPECT_EQ(lock.stripe_count(), 1);
  lock.SetStripeCount(5);
  EXPECT_EQ(lock.stripe_count(), 4);
  lock.SetStripeCount(100);
  EXPECT_EQ(lock.stripe_count(), TreeLock::kMaxStripes);
  lock.SetStripeCount(8);
  EXPECT_EQ(lock.stripe_count(), 8);
}

TEST(TreeLock, SingleStripeConfigBehavesIdentically) {
  // stripes=1 reproduces the old single shared_mutex; the whole mixed
  // workload (including the ring path) must behave exactly the same.
  for (const int stripes : {1, 16}) {
    KernelConfig config;
    config.tree_lock_stripes = stripes;
    Kernel kernel(config);
    InstallStandardPrograms(kernel);
    EXPECT_EQ(kernel.fs().TreeMutex().stripe_count(), stripes);
    std::string digest;
    const int code = ExitCodeOf(kernel, [&digest](ProcessContext& ctx) {
      digest = RunMixedWorkload(ctx, /*via_ring=*/true, /*iterations=*/6);
      return 0;
    });
    EXPECT_EQ(code, 0) << "stripes=" << stripes;
    EXPECT_FALSE(digest.empty());
  }
}

TEST(FdTableStress, LeafMutexSurvivesConcurrentMutation) {
  // The descriptor table's internal leaf mutex: one thread churns slots while
  // another reads and clones. (In the kernel the second thread is a sibling
  // ring submitter's fd-keyed batch; here we drive the table directly.)
  FdTable table;
  constexpr int kIters = 2000;
  std::thread mutator([&table]() {
    for (int i = 0; i < kIters; ++i) {
      const int fd = i % 16;
      table.Set(fd, std::make_shared<OpenFile>());
      if (i % 3 == 0) {
        table.Close(fd);
      }
      if (i % 7 == 0) {
        table.Dup2(fd, (fd + 1) % 16);
      }
    }
  });
  int64_t observed = 0;
  for (int i = 0; i < kIters; ++i) {
    observed += table.OpenCount();
    observed += table.Valid(i % 16) ? 1 : 0;
    OpenFileRef ref = table.Get(i % 16);
    if (i % 50 == 0) {
      FdTable clone = table.Clone();
      observed += clone.OpenCount();
    }
  }
  mutator.join();
  table.CloseAll();
  EXPECT_EQ(table.OpenCount(), 0);
  EXPECT_GE(observed, 0);
}

// --- MPSC submission queue ---------------------------------------------------

#if defined(__SANITIZE_THREAD__)
#define IA_TEST_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define IA_TEST_UNDER_TSAN 1
#endif
#endif
#ifndef IA_TEST_UNDER_TSAN
#define IA_TEST_UNDER_TSAN 0
#endif

TEST(RingUnit, MpscWraparoundUnderProducerContention) {
  // Several raw producer threads hammer a tiny ring so every slot's sequence
  // number laps many times; a consumer thread pops/completes while the main
  // thread reaps. Every cookie must come through exactly once.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = IA_TEST_UNDER_TSAN ? 200 : 600;
  SyscallRing ring(4);  // capacity 4: wraps (kProducers * kPerProducer) / 4 times
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&ring, t] {
      for (int i = 0; i < kPerProducer; ++i) {
        SyscallRequest req = GetpidReq((static_cast<uint64_t>(t) << 32) | static_cast<uint64_t>(i));
        while (!ring.Submit(req)) {
          std::this_thread::yield();
        }
      }
    });
  }
  constexpr uint64_t kTotal = static_cast<uint64_t>(kProducers) * kPerProducer;
  std::thread drainer([&ring] {
    SyscallRequest req;
    uint64_t drained = 0;
    while (drained < kTotal) {
      if (!ring.PopRequest(&req)) {
        std::this_thread::yield();
        continue;
      }
      SyscallCompletion comp;
      comp.user_data = req.user_data;
      comp.status = 0;
      ring.PushCompletion(comp);  // completion space is reserved: must not fail
      ++drained;
    }
  });
  // Reap on the main thread (the cq is SPSC: drainer pushes, we pop).
  std::vector<uint32_t> next(kProducers, 0);  // per-producer FIFO check
  uint64_t reaped = 0;
  int bad = 0;
  SyscallCompletion comp;
  while (reaped < kTotal) {
    if (!ring.Reap(&comp)) {
      std::this_thread::yield();
      continue;
    }
    const uint32_t t = static_cast<uint32_t>(comp.user_data >> 32);
    const uint32_t i = static_cast<uint32_t>(comp.user_data & 0xffffffffu);
    if (t >= kProducers || i != next[t]++) {
      ++bad;  // lost, duplicated, or reordered within one producer's stream
    }
    ++reaped;
  }
  for (std::thread& th : producers) {
    th.join();
  }
  drainer.join();
  EXPECT_EQ(bad, 0);
  EXPECT_EQ(ring.InFlight(), 0u);
  for (int t = 0; t < kProducers; ++t) {
    EXPECT_EQ(next[static_cast<size_t>(t)], static_cast<uint32_t>(kPerProducer));
  }
}

TEST(RingUnit, MpscBackpressureNeverOverfills) {
  // Competing producers against a full ring: exactly capacity submissions are
  // accepted, the rest are refused (no silent overwrite, no lost reservation).
  SyscallRing ring(4);
  constexpr int kThreads = 3;
  constexpr int kAttemptsEach = 16;
  std::atomic<int> accepted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ring, &accepted, t] {
      for (int i = 0; i < kAttemptsEach; ++i) {
        if (ring.Submit(GetpidReq(static_cast<uint64_t>(t * 100 + i)))) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  EXPECT_EQ(accepted.load(), 4);
  EXPECT_EQ(ring.InFlight(), 4u);
  EXPECT_FALSE(ring.Submit(GetpidReq(99)));
  // Drain one and the freed slot is claimable again.
  SyscallRequest req;
  ASSERT_TRUE(ring.PopRequest(&req));
  SyscallCompletion comp;
  comp.user_data = req.user_data;
  ring.PushCompletion(comp);
  ASSERT_TRUE(ring.Reap(&comp));
  EXPECT_TRUE(ring.Submit(GetpidReq(100)));
  EXPECT_FALSE(ring.Submit(GetpidReq(101)));
}

TEST(RingStress, ManySubmittersShareTheRingWhileOwnerDrains) {
  // The tentpole arrangement: N sibling host threads submit concurrently into
  // the owning process's MPSC ring while the owner drains and reaps. Each
  // producer's stream must arrive complete, correct, and in its own order.
  auto kernel = MakeWorld();
  const int code = ExitCodeOf(*kernel, [](ProcessContext& ctx) {
    constexpr int kSubmitters = 4;
    constexpr int kPerSubmitter = IA_TEST_UNDER_TSAN ? 100 : 400;
    SyscallRing& ring = ctx.Ring(16);
    std::vector<std::thread> submitters;
    for (int t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&ring, t] {
        for (int i = 0; i < kPerSubmitter; ++i) {
          BatchClient::SubmitBlocking(ring, kSysGetpid, SyscallArgs{},
                                      (static_cast<uint64_t>(t) << 32) |
                                          static_cast<uint64_t>(i));
        }
      });
    }
    const Pid self = ctx.Getpid();
    uint32_t next[kSubmitters] = {};
    int64_t reaped = 0;
    int bad = 0;
    SyscallCompletion comps[32];
    while (reaped < static_cast<int64_t>(kSubmitters) * kPerSubmitter) {
      ctx.DrainRing();
      const uint32_t n = ctx.ReapBatch(comps, 32);
      if (n == 0) {
        std::this_thread::yield();
        continue;
      }
      for (uint32_t i = 0; i < n; ++i) {
        const uint32_t t = static_cast<uint32_t>(comps[i].user_data >> 32);
        const uint32_t seq = static_cast<uint32_t>(comps[i].user_data & 0xffffffffu);
        if (t >= kSubmitters || seq != next[t]++ || comps[i].status != 0 ||
            comps[i].result.rv[0] != self) {
          ++bad;
        }
      }
      reaped += n;
    }
    for (std::thread& th : submitters) {
      th.join();
    }
    return bad == 0 ? 0 : 1;
  });
  EXPECT_EQ(code, 0);
}

TEST(Ring, RingloadConcurrentSubmittersExitsClean) {
  auto kernel = MakeWorld();
  SpawnOptions options;
  options.path = "/usr/bin/ringload";
  options.argv = {"ringload", "--submitters=4", "/tmp", "8"};
  const Pid pid = kernel->Spawn(options);
  ASSERT_GT(pid, 0);
  const int status = kernel->HostWaitPid(pid);
  ASSERT_TRUE(WifExited(status));
  EXPECT_EQ(WExitStatus(status), 0);
}

// --- cross-stripe drain overlap ----------------------------------------------

// A read-heavy batch whose rows are reorderable across stripes: kFiles files
// (distinct pathname stripes), each contributing stat + fstat + lseek + read
// on its own descriptor, all submitted as ONE batch so the stripe-grouped
// dispatcher actually has something to regroup. Returns a digest line per
// completion: "index:number:status:rv0", plus the read buffers, so any
// reordering that leaked into results (wrong offsets, swapped completions,
// crossed fd streams) breaks the comparison.
std::string RunReorderableBatchWorkload(ProcessContext& ctx, int iterations) {
  constexpr int kFiles = 8;
  std::string digest;
  ctx.Mkdir("/ov");
  std::vector<std::string> paths;
  for (int f = 0; f < kFiles; ++f) {
    paths.push_back(StringPrintf("/ov/f%d.dat", f));
    std::string payload(256 + 16 * f, static_cast<char>('a' + f));
    ctx.WriteWholeFile(paths.back(), payload);
  }
  int fds[kFiles];
  for (int f = 0; f < kFiles; ++f) {
    fds[f] = ctx.Open(paths[static_cast<size_t>(f)], kORdonly);
    if (fds[f] < 0) {
      return "open-failed";
    }
  }
  BatchClient batch(ctx, /*ring_entries=*/64);
  ia::Stat st[kFiles];
  ia::Stat fst[kFiles];
  char bufs[kFiles][64];
  for (int it = 0; it < iterations; ++it) {
    uint64_t tag = 0;
    for (int f = 0; f < kFiles; ++f) {
      batch.PushStat(paths[static_cast<size_t>(f)].c_str(), &st[f], tag++);
      batch.PushFstat(fds[f], &fst[f], tag++);
      batch.PushLseek(fds[f], static_cast<Off>((it * 7 + f) % 64), kSeekSet, tag++);
      batch.PushRead(fds[f], bufs[f], static_cast<int64_t>(sizeof(bufs[f])), tag++);
    }
    batch.Flush();
    const std::vector<SyscallCompletion>& comps = batch.completions();
    for (size_t i = 0; i < comps.size(); ++i) {
      digest += StringPrintf("%zu:%llu:%lld:%lld\n", i,
                             static_cast<unsigned long long>(comps[i].user_data),
                             static_cast<long long>(comps[i].status),
                             static_cast<long long>(comps[i].result.rv[0]));
    }
    for (int f = 0; f < kFiles; ++f) {
      digest.append(bufs[f], sizeof(bufs[f]));
      digest += '\n';
    }
  }
  for (int f = 0; f < kFiles; ++f) {
    ctx.Close(fds[f]);
  }
  return digest;
}

// A pass-through frame interested in one syscall number: those rows become
// agent-routed barriers in the drain, everything else still batches.
class PassthroughFrame final : public SyscallHandler {
 public:
  SyscallStatus HandleSyscall(ProcessContext& ctx, int frame, int number,
                              const SyscallArgs& args, SyscallResult* rv) override {
    return ctx.SyscallBelow(frame, number, args, rv);
  }
  void HandleSignal(ProcessContext& ctx, int frame, int signo) override {
    ctx.ForwardSignal(frame, signo);
  }
};

TEST(RingDeterminism, StripeOverlapResultsIdenticalToExactOrder) {
  // The same reorderable batch against batch_stripe_overlap on and off:
  // stripe-grouped execution must be result-identical per fd stream —
  // completions land at their original indices with the values exact-order
  // dispatch would have produced.
  std::string digests[2];
  for (int run = 0; run < 2; ++run) {
    KernelConfig config;
    config.batch_stripe_overlap = run == 1;
    Kernel kernel(config);
    InstallStandardPrograms(kernel);
    std::string digest;
    const int code = ExitCodeOf(kernel, [&digest](ProcessContext& ctx) {
      digest = RunReorderableBatchWorkload(ctx, /*iterations=*/10);
      return 0;
    });
    EXPECT_EQ(code, 0);
    digests[run] = digest;
  }
  EXPECT_FALSE(digests[0].empty());
  EXPECT_NE(digests[0], "open-failed");
  EXPECT_EQ(digests[0], digests[1]);
}

TEST(RingDeterminism, StripeOverlapWithAgentFrameIdenticalToExactOrder) {
  // With a frame interposed on stat, every fourth row of the batch is an
  // agent-routed barrier: the dispatcher must regroup only the windows
  // between barriers and still produce byte-identical results.
  std::string digests[2];
  for (int run = 0; run < 2; ++run) {
    KernelConfig config;
    config.batch_stripe_overlap = run == 1;
    Kernel kernel(config);
    InstallStandardPrograms(kernel);
    std::string digest;
    const int code = ExitCodeOf(kernel, [&digest](ProcessContext& ctx) {
      EmulationFrame frame;
      frame.handler = std::make_shared<PassthroughFrame>();
      frame.syscall_interest.set(kSysStat);
      ctx.emulation().Push(std::move(frame));
      digest = RunReorderableBatchWorkload(ctx, /*iterations=*/6);
      ctx.emulation().Pop();
      return 0;
    });
    EXPECT_EQ(code, 0);
    digests[run] = digest;
  }
  EXPECT_FALSE(digests[0].empty());
  EXPECT_EQ(digests[0], digests[1]);
}

TEST(RingDeterminism, StripeOverlapUnderFaultPlanKeepsExactOrder) {
  // An installed FaultPlan forces the exact per-call batch path regardless of
  // the overlap config: result digests AND the recorded fault decision stream
  // must match between overlap-on and overlap-off kernels.
  std::string digests[2];
  std::string traces[2];
  for (int run = 0; run < 2; ++run) {
    KernelConfig config;
    config.batch_stripe_overlap = run == 1;
    Kernel kernel(config);
    InstallStandardPrograms(kernel);
    FaultPlan plan;
    plan.seed = 0x51ab;
    plan.eintr_probability = 0.15;
    plan.short_probability = 0.3;
    plan.class_rules.push_back({kTakesPath, 0.2, kENoent});
    plan.record_trace = true;
    kernel.SetFaultPlan(plan);
    std::string digest;
    const int code = ExitCodeOf(kernel, [&digest](ProcessContext& ctx) {
      digest = RunReorderableBatchWorkload(ctx, /*iterations=*/8);
      return 0;
    });
    EXPECT_EQ(code, 0);
    digests[run] = digest;
    traces[run] = kernel.FaultTraceText();
  }
  EXPECT_FALSE(traces[0].empty());
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(traces[0], traces[1]);
}

// --- sharded statistics ------------------------------------------------------

TEST(KernelStats, ShardedCountersFoldExactlyAfterQuiesce) {
  // K concurrent processes each make a known number of calls; once every one
  // has been reaped the folded shards must recount them exactly — sharding
  // trades live-read atomicity, never quiesced accuracy.
  auto kernel = MakeWorld();
  const int64_t base_total = kernel->TotalSyscallCount();
  const std::array<SyscallStat, kMaxSyscall> base = kernel->SyscallStats();

  constexpr int kProcs = 4;
  constexpr int kCallsEach = IA_TEST_UNDER_TSAN ? 50 : 200;
  std::vector<Pid> pids;
  for (int p = 0; p < kProcs; ++p) {
    SpawnOptions options;
    options.body = [](ProcessContext& ctx) {
      for (int i = 0; i < kCallsEach; ++i) {
        ctx.Getpid();
      }
      return 0;
    };
    pids.push_back(kernel->Spawn(options));
    ASSERT_GT(pids.back(), 0);
  }
  for (const Pid pid : pids) {
    const int status = kernel->HostWaitPid(pid);
    ASSERT_TRUE(WifExited(status));
    EXPECT_EQ(WExitStatus(status), 0);
  }

  const std::array<SyscallStat, kMaxSyscall> after = kernel->SyscallStats();
  const int64_t getpid_delta =
      after[kSysGetpid].calls - base[kSysGetpid].calls;
  EXPECT_EQ(getpid_delta, static_cast<int64_t>(kProcs) * kCallsEach);
  EXPECT_EQ(after[kSysGetpid].errors, base[kSysGetpid].errors);
  // vtime accounting rode along shard-by-shard too (GE: the virtual clock is
  // global, so concurrent processes' advances can land inside a call's span).
  EXPECT_GE(after[kSysGetpid].vtime_usec - base[kSysGetpid].vtime_usec,
            getpid_delta * kernel->SyscallCost(kSysGetpid));
  // The folded per-number calls and the folded total agree: both tallies are
  // bumped together on every dispatch, just in per-thread shards.
  int64_t per_number_total = 0;
  for (int i = 0; i < kMaxSyscall; ++i) {
    per_number_total += after[static_cast<size_t>(i)].calls - base[static_cast<size_t>(i)].calls;
  }
  EXPECT_EQ(kernel->TotalSyscallCount() - base_total, per_number_total);
}

TEST(KernelStats, BatchPathFoldsIntoTheSameShardedTallies) {
  // The batched dispatcher's compact accumulator must flush into the shards
  // with the same totals the per-call path would have produced.
  auto kernel = MakeWorld();
  const std::array<SyscallStat, kMaxSyscall> base = kernel->SyscallStats();
  const int code = ExitCodeOf(*kernel, [](ProcessContext& ctx) {
    ctx.WriteWholeFile("/tmp/fold.dat", std::string(128, 'f'));
    BatchClient batch(ctx, /*ring_entries=*/32);
    ia::Stat st{};
    char buf[64];
    const int fd = ctx.Open("/tmp/fold.dat", kORdonly);
    if (fd < 0) {
      return 1;
    }
    for (int it = 0; it < 5; ++it) {
      for (int i = 0; i < 4; ++i) {
        batch.PushStat("/tmp/fold.dat", &st, 0);
        batch.PushLseek(fd, 0, kSeekSet, 0);
        batch.PushRead(fd, buf, static_cast<int64_t>(sizeof(buf)), 0);
        batch.PushGetpid(0);
      }
      if (batch.Flush() != 16) {
        return 2;
      }
    }
    ctx.Close(fd);
    return 0;
  });
  ASSERT_EQ(code, 0);
  const std::array<SyscallStat, kMaxSyscall> after = kernel->SyscallStats();
  EXPECT_EQ(after[kSysStat].calls - base[kSysStat].calls, 20);
  EXPECT_EQ(after[kSysLseek].calls - base[kSysLseek].calls, 20);
  EXPECT_EQ(after[kSysRead].calls - base[kSysRead].calls, 20);
  EXPECT_EQ(after[kSysGetpid].calls - base[kSysGetpid].calls, 20);
  EXPECT_EQ(after[kSysRead].vtime_usec - base[kSysRead].vtime_usec,
            20 * kernel->SyscallCost(kSysRead));
}

}  // namespace
}  // namespace ia
