// The submission/completion ring plane and its supporting refactors: the
// SyscallRing SPSC queues, DrainRing's batched kernel-lane trap and
// agent-routed fallbacks, the determinism gates (ring-submitted batches are
// result- and ktrace- and fault-stream-identical to synchronous issue), the
// aggregated RouteStats() counters, the striped VFS tree lock under
// concurrent clients, and the FdTable leaf mutex.
#include "tests/test_helpers.h"

#include <atomic>
#include <cstring>
#include <thread>

#include "src/apps/batch.h"
#include "src/base/strings.h"
#include "src/kernel/fdtable.h"
#include "src/kernel/ktrace.h"
#include "src/kernel/ring.h"

namespace ia {
namespace {

using test::ExitCodeOf;
using test::FileContents;
using test::MakeWorld;
using test::RunBody;
using test::RunBodyUnder;

// --- SyscallRing unit tests --------------------------------------------------

SyscallRequest GetpidReq(uint64_t tag) {
  SyscallRequest req;
  req.number = kSysGetpid;
  req.user_data = tag;
  return req;
}

TEST(RingUnit, RoundTripPreservesFifoOrderAndCookies) {
  SyscallRing ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (uint64_t tag = 1; tag <= 3; ++tag) {
    EXPECT_TRUE(ring.Submit(GetpidReq(tag)));
  }
  EXPECT_EQ(ring.SubmissionsPending(), 3u);
  EXPECT_EQ(ring.InFlight(), 3u);

  SyscallRequest req;
  for (uint64_t tag = 1; tag <= 3; ++tag) {
    ASSERT_TRUE(ring.PopRequest(&req));
    EXPECT_EQ(req.user_data, tag);
    SyscallCompletion comp;
    comp.user_data = req.user_data;
    comp.status = 42;
    ring.PushCompletion(comp);
  }
  EXPECT_FALSE(ring.PopRequest(&req));
  EXPECT_EQ(ring.CompletionsPending(), 3u);

  SyscallCompletion comp;
  for (uint64_t tag = 1; tag <= 3; ++tag) {
    ASSERT_TRUE(ring.Reap(&comp));
    EXPECT_EQ(comp.user_data, tag);
    EXPECT_EQ(comp.status, 42);
  }
  EXPECT_FALSE(ring.Reap(&comp));
  EXPECT_EQ(ring.InFlight(), 0u);
}

TEST(RingUnit, CapacityCountsInFlightNotJustQueued) {
  SyscallRing ring(4);
  for (uint64_t tag = 0; tag < 4; ++tag) {
    ASSERT_TRUE(ring.Submit(GetpidReq(tag)));
  }
  // Full: the 5th entry is refused.
  EXPECT_FALSE(ring.Submit(GetpidReq(99)));

  // Draining a request to the completion queue does NOT free space — the
  // reservation guarantees PushCompletion always has room, so only reaping
  // releases it.
  SyscallRequest req;
  ASSERT_TRUE(ring.PopRequest(&req));
  SyscallCompletion comp;
  comp.user_data = req.user_data;
  ring.PushCompletion(comp);
  EXPECT_FALSE(ring.Submit(GetpidReq(99)));

  ASSERT_TRUE(ring.Reap(&comp));
  EXPECT_TRUE(ring.Submit(GetpidReq(99)));
}

TEST(RingUnit, SubmitBatchAcceptsExactlyTheRoom) {
  SyscallRing ring(2);
  SyscallRequest reqs[5];
  for (uint64_t tag = 0; tag < 5; ++tag) {
    reqs[tag] = GetpidReq(tag);
  }
  EXPECT_EQ(ring.SubmitBatch(reqs, 5), 2u);
  EXPECT_EQ(ring.SubmitBatch(reqs + 2, 3), 0u);
  SyscallRequest req;
  ASSERT_TRUE(ring.PopRequest(&req));
  EXPECT_EQ(req.user_data, 0u);
}

TEST(RingUnit, EntriesRoundUpToPowerOfTwo) {
  EXPECT_EQ(SyscallRing(1).capacity(), 2u);
  EXPECT_EQ(SyscallRing(3).capacity(), 4u);
  EXPECT_EQ(SyscallRing(8).capacity(), 8u);
  EXPECT_EQ(SyscallRing(100).capacity(), 128u);
}

// --- the drain path ----------------------------------------------------------

TEST(Ring, DrainCompletesInSubmissionOrder) {
  auto kernel = MakeWorld();
  const int code = ExitCodeOf(*kernel, [](ProcessContext& ctx) {
    ctx.WriteWholeFile("/tmp/ringd", "x");
    ia::Stat st{};
    SyscallRequest reqs[4];
    reqs[0] = GetpidReq(10);
    reqs[1].number = kSysStat;
    reqs[1].user_data = 11;
    reqs[1].args.SetPtr(0, "/tmp/ringd");
    reqs[1].args.SetPtr(1, &st);
    reqs[2] = GetpidReq(12);
    reqs[3].number = kSysStat;
    reqs[3].user_data = 13;
    reqs[3].args.SetPtr(0, "/absent");
    reqs[3].args.SetPtr(1, &st);

    ctx.Ring(8);
    if (ctx.SubmitBatch(reqs, 4) != 4) {
      return 1;
    }
    if (ctx.DrainRing() != 4) {
      return 2;
    }
    SyscallCompletion comps[4];
    if (ctx.ReapBatch(comps, 4) != 4) {
      return 3;
    }
    const Pid self = ctx.Getpid();
    if (comps[0].user_data != 10 || comps[0].status != 0 || comps[0].result.rv[0] != self) {
      return 4;
    }
    if (comps[1].user_data != 11 || comps[1].status != 0) {
      return 5;
    }
    if (comps[2].user_data != 12 || comps[2].status != 0 || comps[2].result.rv[0] != self) {
      return 6;
    }
    if (comps[3].user_data != 13 || comps[3].status != -kENoent) {
      return 7;
    }
    return 0;
  });
  EXPECT_EQ(code, 0);
}

// A counting frame interested in getpid, for the agent-lane tests.
class CountingFrame final : public SyscallHandler {
 public:
  SyscallStatus HandleSyscall(ProcessContext& ctx, int frame, int number,
                              const SyscallArgs& args, SyscallResult* rv) override {
    hits.fetch_add(1, std::memory_order_relaxed);
    return ctx.SyscallBelow(frame, number, args, rv);
  }
  void HandleSignal(ProcessContext& ctx, int frame, int signo) override {
    ctx.ForwardSignal(frame, signo);
  }

  std::atomic<int64_t> hits{0};
};

TEST(Ring, AgentRoutedEntriesTraverseTheEmulationStack) {
  // Ring entries whose number has an interested frame must run through the
  // compiled route exactly like synchronous calls; kernel-lane entries around
  // them still batch, and completion order stays submission order.
  auto kernel = MakeWorld();
  auto counter = std::make_shared<CountingFrame>();
  const int code = ExitCodeOf(*kernel, [counter](ProcessContext& ctx) {
    ctx.WriteWholeFile("/tmp/ringa", "x");
    EmulationFrame frame;
    frame.handler = counter;
    frame.syscall_interest.set(kSysGetpid);
    ctx.PushEmulation(std::move(frame));

    ia::Stat st{};
    SyscallRequest reqs[6];
    for (uint64_t i = 0; i < 6; ++i) {
      if (i % 2 == 0) {
        reqs[i] = GetpidReq(i);  // agent lane
      } else {
        reqs[i].number = kSysStat;  // kernel lane
        reqs[i].user_data = i;
        reqs[i].args.SetPtr(0, "/tmp/ringa");
        reqs[i].args.SetPtr(1, &st);
      }
    }
    ctx.Ring(8);
    if (ctx.SubmitBatch(reqs, 6) != 6 || ctx.DrainRing() != 6) {
      return 1;
    }
    SyscallCompletion comps[6];
    if (ctx.ReapBatch(comps, 6) != 6) {
      return 2;
    }
    for (uint64_t i = 0; i < 6; ++i) {
      if (comps[i].user_data != i || comps[i].status < 0) {
        return 3;
      }
    }
    ctx.PopEmulation();
    return counter->hits.load() == 3 ? 0 : 4;
  });
  EXPECT_EQ(code, 0);
}

TEST(Ring, BatchClientSplitsOversizedBatches) {
  auto kernel = MakeWorld();
  const int code = ExitCodeOf(*kernel, [](ProcessContext& ctx) {
    BatchClient batch(ctx, /*ring_entries=*/8);
    constexpr int kCalls = 100;
    for (int i = 0; i < kCalls; ++i) {
      batch.PushGetpid(static_cast<uint64_t>(i));
    }
    if (batch.Flush() != kCalls) {
      return 1;
    }
    const Pid self = ctx.Getpid();
    for (int i = 0; i < kCalls; ++i) {
      const SyscallCompletion& c = batch.completions()[static_cast<size_t>(i)];
      if (c.user_data != static_cast<uint64_t>(i) || c.status != 0 ||
          c.result.rv[0] != self) {
        return 2;
      }
    }
    return 0;
  });
  EXPECT_EQ(code, 0);
}

TEST(Ring, RingloadProgramExitsClean) {
  auto kernel = MakeWorld();
  SpawnOptions options;
  options.path = "/usr/bin/ringload";
  options.argv = {"ringload", "/tmp", "8"};
  const Pid pid = kernel->Spawn(options);
  ASSERT_GT(pid, 0);
  const int status = kernel->HostWaitPid(pid);
  ASSERT_TRUE(WifExited(status));
  EXPECT_EQ(WExitStatus(status), 0);
}

// --- determinism gates: ring vs synchronous ---------------------------------

// The mixed per-iteration workload both variants issue: open (synchronous —
// its fd feeds the fd-keyed entries), then stat/fstat/lseek/read/getpid/close.
// Returns a digest line per call: "number:status:rv0".
std::string RunMixedWorkload(ProcessContext& ctx, bool via_ring, int iterations) {
  const std::string file = "/tmp/mixed.dat";
  std::string payload(512, '\0');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>('A' + i % 23);
  }
  ctx.WriteWholeFile(file, payload);

  std::string digest;
  char buf[128];
  ia::Stat st{};
  ia::Stat fst{};
  for (int it = 0; it < iterations; ++it) {
    const int fd = ctx.Open(file, kORdonly);
    if (fd < 0) {
      digest += StringPrintf("open:%d\n", fd);
      continue;
    }
    SyscallRequest reqs[6];
    reqs[0].number = kSysStat;
    reqs[0].args.SetPtr(0, file.c_str());
    reqs[0].args.SetPtr(1, &st);
    reqs[1].number = kSysFstat;
    reqs[1].args.SetInt(0, fd);
    reqs[1].args.SetPtr(1, &fst);
    reqs[2].number = kSysLseek;
    reqs[2].args.SetInt(0, fd);
    reqs[2].args.SetInt(1, static_cast<int64_t>(it % 64));
    reqs[2].args.SetInt(2, kSeekSet);
    reqs[3].number = kSysRead;
    reqs[3].args.SetInt(0, fd);
    reqs[3].args.SetPtr(1, buf);
    reqs[3].args.SetInt(2, static_cast<int64_t>(sizeof(buf)));
    reqs[4].number = kSysGetpid;
    reqs[5].number = kSysClose;
    reqs[5].args.SetInt(0, fd);

    if (via_ring) {
      ctx.Ring(8);
      ctx.SubmitBatch(reqs, 6);
      ctx.DrainRing();
      SyscallCompletion comps[6];
      const uint32_t reaped = ctx.ReapBatch(comps, 6);
      for (uint32_t i = 0; i < reaped; ++i) {
        digest += StringPrintf("%d:%lld:%lld\n", reqs[i].number,
                               static_cast<long long>(comps[i].status),
                               static_cast<long long>(comps[i].result.rv[0]));
      }
    } else {
      for (const SyscallRequest& req : reqs) {
        SyscallResult rv;
        const SyscallStatus status = ctx.Syscall(req.number, req.args, &rv);
        digest += StringPrintf("%d:%lld:%lld\n", req.number, static_cast<long long>(status),
                               static_cast<long long>(rv.rv[0]));
      }
    }
  }
  return digest;
}

// A frame pushed raw onto the emulation stack (EmulationStack::Push, null
// health) runs UNCONTAINED — an exception out of it mid-drain must poison only
// its own entry (error completion, in-flight slot released), never the ring.
class ThrowingFrame final : public SyscallHandler {
 public:
  SyscallStatus HandleSyscall(ProcessContext& ctx, int frame, int number,
                              const SyscallArgs& args, SyscallResult* rv) override {
    if (number == kSysGetpid) {
      throw std::runtime_error("poisoned entry");
    }
    return ctx.SyscallBelow(frame, number, args, rv);
  }
  void HandleSignal(ProcessContext& ctx, int frame, int signo) override {
    ctx.ForwardSignal(frame, signo);
  }
};

TEST(Ring, UncontainedFrameThrowMidDrainPoisonsOnlyItsEntry) {
  auto kernel = MakeWorld();
  const int code = ExitCodeOf(*kernel, [](ProcessContext& ctx) {
    ctx.WriteWholeFile("/tmp/ringp", "x");
    EmulationFrame frame;
    frame.handler = std::make_shared<ThrowingFrame>();
    frame.syscall_interest.set(kSysGetpid);
    ctx.emulation().Push(std::move(frame));  // raw push: no health, no trap

    ia::Stat st{};
    SyscallRequest reqs[3];
    reqs[0].number = kSysStat;
    reqs[0].user_data = 0;
    reqs[0].args.SetPtr(0, "/tmp/ringp");
    reqs[0].args.SetPtr(1, &st);
    reqs[1] = GetpidReq(1);  // the poisoned entry
    reqs[2].number = kSysStat;
    reqs[2].user_data = 2;
    reqs[2].args.SetPtr(0, "/tmp/ringp");
    reqs[2].args.SetPtr(1, &st);

    SyscallRing& ring = ctx.Ring(8);
    if (ctx.SubmitBatch(reqs, 3) != 3 || ctx.DrainRing() != 3) {
      return 1;  // the drain must complete all three, not stall at the throw
    }
    SyscallCompletion comps[3];
    if (ctx.ReapBatch(comps, 3) != 3) {
      return 2;
    }
    if (comps[0].user_data != 0 || comps[0].status != 0) {
      return 3;
    }
    if (comps[1].user_data != 1 || comps[1].status != -kEIo) {
      return 4;  // the error completion, not a leaked in_flight_ slot
    }
    if (comps[2].user_data != 2 || comps[2].status != 0) {
      return 5;
    }
    if (ring.InFlight() != 0) {
      return 6;  // a leak here would wedge the ring once capacity is reached
    }
    ctx.emulation().Pop();
    // The ring stays usable after the poisoned entry.
    SyscallRequest again = GetpidReq(7);
    if (ctx.SubmitBatch(&again, 1) != 1 || ctx.DrainRing() != 1) {
      return 7;
    }
    SyscallCompletion comp;
    if (ctx.ReapBatch(&comp, 1) != 1 || comp.status != 0 || comp.result.rv[0] <= 0) {
      return 8;
    }
    return 0;
  });
  EXPECT_EQ(code, 0);
}

TEST(RingDeterminism, BatchResultsIdenticalToSynchronousIssue) {
  std::string digests[2];
  for (int run = 0; run < 2; ++run) {
    auto kernel = MakeWorld();
    std::string digest;
    const int code = ExitCodeOf(*kernel, [&digest, run](ProcessContext& ctx) {
      digest = RunMixedWorkload(ctx, /*via_ring=*/run == 1, /*iterations=*/12);
      return 0;
    });
    EXPECT_EQ(code, 0);
    digests[run] = digest;
  }
  EXPECT_FALSE(digests[0].empty());
  EXPECT_EQ(digests[0], digests[1]);
}

std::string KtraceDigest(const VectorKtraceSink& sink) {
  std::string digest;
  for (const KtraceRecord& r : sink.records()) {
    digest += StringPrintf("%d:%d:%lld:%d:%s:%lld\n", r.pid, r.syscall,
                           static_cast<long long>(r.result), r.fd, r.path.c_str(),
                           static_cast<long long>(r.vtime_usec));
  }
  return digest;
}

TEST(RingDeterminism, KtraceDigestIdenticalToSynchronousIssue) {
  // With a sink attached the batch trap falls back to the exact per-call
  // path, so the trace — pids, paths, results, fds, even virtual timestamps —
  // must be byte-identical between ring and synchronous issue.
  std::string results[2];
  std::string traces[2];
  for (int run = 0; run < 2; ++run) {
    auto kernel = MakeWorld();
    VectorKtraceSink sink;
    kernel->SetKtrace(&sink);
    std::string digest;
    const int code = ExitCodeOf(*kernel, [&digest, run](ProcessContext& ctx) {
      digest = RunMixedWorkload(ctx, /*via_ring=*/run == 1, /*iterations=*/10);
      return 0;
    });
    kernel->SetKtrace(nullptr);
    EXPECT_EQ(code, 0);
    results[run] = digest;
    traces[run] = KtraceDigest(sink);
  }
  EXPECT_FALSE(traces[0].empty());
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(traces[0], traces[1]);
}

TEST(RingDeterminism, FaultStreamIdenticalToSynchronousIssue) {
  // An installed FaultPlan keys every decision on (seed, pid, sequence,
  // number); the ring path must consume the identical sequence, so statuses,
  // injected errors, and the recorded fault trace all match synchronous
  // issue byte for byte.
  std::string results[2];
  std::string traces[2];
  for (int run = 0; run < 2; ++run) {
    auto kernel = MakeWorld();
    FaultPlan plan;
    plan.seed = 0x0ab5;
    plan.eintr_probability = 0.2;
    plan.short_probability = 0.4;
    plan.class_rules.push_back({kTakesPath, 0.2, kENoent});
    plan.record_trace = true;
    kernel->SetFaultPlan(plan);
    std::string digest;
    const int code = ExitCodeOf(*kernel, [&digest, run](ProcessContext& ctx) {
      digest = RunMixedWorkload(ctx, /*via_ring=*/run == 1, /*iterations=*/30);
      return 0;
    });
    EXPECT_EQ(code, 0);
    results[run] = digest;
    traces[run] = kernel->FaultTraceText();
  }
  EXPECT_FALSE(traces[0].empty());
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(traces[0], traces[1]);
}

// --- RouteStats() ------------------------------------------------------------

TEST(RouteStats, StartsZeroAndAggregatesAtProcessExit) {
  auto kernel = MakeWorld();
  const Kernel::RouteCacheStats before = kernel->RouteStats();
  EXPECT_EQ(before.lookups, 0);
  EXPECT_EQ(before.builds, 0);

  constexpr int kCalls = 50;
  const int code = ExitCodeOf(*kernel, [](ProcessContext& ctx) {
    for (int i = 0; i < kCalls; ++i) {
      ctx.Getpid();
    }
    return 0;
  });
  EXPECT_EQ(code, 0);

  // The exit path folded the process's counters into the kernel tallies:
  // one lookup per call, but only the first compiled a route, so the
  // steady-state hit rate is high.
  const Kernel::RouteCacheStats after = kernel->RouteStats();
  EXPECT_GE(after.lookups, kCalls);
  EXPECT_GE(after.builds, 1);
  EXPECT_LE(after.builds, after.lookups);
  const double hit_rate =
      1.0 - static_cast<double>(after.builds) / static_cast<double>(after.lookups);
  EXPECT_GE(hit_rate, 0.8);
}

TEST(RouteStats, PushPopChurnForcesOneRebuildPerGeneration) {
  auto kernel = MakeWorld();
  auto counter = std::make_shared<CountingFrame>();
  int64_t in_body_lookups = 0;
  int64_t in_body_builds = 0;
  const int code = ExitCodeOf(*kernel, [&, counter](ProcessContext& ctx) {
    // Steady phase: many lookups, at most one build for this number.
    ctx.Getpid();  // compile the route once
    const int64_t l0 = ctx.emulation().route_lookups();
    const int64_t b0 = ctx.emulation().route_builds();
    for (int i = 0; i < 20; ++i) {
      ctx.Getpid();
    }
    if (ctx.emulation().route_lookups() - l0 != 20) {
      return 1;
    }
    if (ctx.emulation().route_builds() != b0) {
      return 2;  // steady-state calls must all be cache hits
    }

    // Churn phase: every push and every pop bumps the generation, so the
    // first lookup after each is a miss that recompiles. The routed call
    // itself performs two lookups (dispatch entry + the frame's
    // SyscallBelow continuation), the second of which hits the fresh route.
    const int64_t l1 = ctx.emulation().route_lookups();
    const int64_t b1 = ctx.emulation().route_builds();
    constexpr int kChurn = 10;
    for (int i = 0; i < kChurn; ++i) {
      EmulationFrame frame;
      frame.handler = counter;
      frame.syscall_interest.set(kSysGetpid);
      ctx.PushEmulation(std::move(frame));
      ctx.Getpid();
      ctx.PopEmulation();
      ctx.Getpid();
    }
    if (ctx.emulation().route_lookups() - l1 != 3 * kChurn) {
      return 3;
    }
    if (ctx.emulation().route_builds() - b1 != 2 * kChurn) {
      return 4;  // one rebuild per generation bump, no more
    }
    in_body_lookups = ctx.emulation().route_lookups();
    in_body_builds = ctx.emulation().route_builds();
    return 0;
  });
  EXPECT_EQ(code, 0);
  EXPECT_EQ(counter->hits.load(), 10);

  // Exit-time aggregation preserves (at least) what the body observed.
  const Kernel::RouteCacheStats stats = kernel->RouteStats();
  EXPECT_GE(stats.lookups, in_body_lookups);
  EXPECT_GE(stats.builds, in_body_builds);
  EXPECT_LE(stats.builds, stats.lookups);
}

TEST(RouteStats, ForkAccumulatesBothProcessesCounters) {
  auto kernel = MakeWorld();
  constexpr int kParentCalls = 20;
  constexpr int kChildCalls = 30;
  const int code = ExitCodeOf(*kernel, [](ProcessContext& ctx) {
    for (int i = 0; i < kParentCalls; ++i) {
      ctx.Getpid();
    }
    const Pid child = ctx.Fork([](ProcessContext& cc) {
      for (int i = 0; i < kChildCalls; ++i) {
        cc.Getpid();
      }
      return 0;
    });
    int status = 0;
    ctx.Wait4(child, &status, 0, nullptr);
    return WExitStatus(status);
  });
  EXPECT_EQ(code, 0);

  // Both processes' counters landed in the kernel aggregate; the child's
  // stack starts empty (agents re-install via the wrapped body), so it
  // compiled its own routes — builds reflects at least two processes.
  const Kernel::RouteCacheStats stats = kernel->RouteStats();
  EXPECT_GE(stats.lookups, kParentCalls + kChildCalls);
  EXPECT_GE(stats.builds, 2);
  EXPECT_LE(stats.builds, stats.lookups);
}

// --- concurrency stress (TSan targets) ---------------------------------------

TEST(RingStress, SiblingSubmitterWhileOwnerDrains) {
  // The documented split arrangement: one sibling host thread owns the
  // submission side while the process thread drains and reaps. The SPSC
  // atomics must hand entries across cleanly and in order.
  auto kernel = MakeWorld();
  const int code = ExitCodeOf(*kernel, [](ProcessContext& ctx) {
    constexpr int kTotal = 500;
    SyscallRing& ring = ctx.Ring(16);
    std::thread submitter([&ring]() {
      for (int i = 0; i < kTotal; ++i) {
        SyscallRequest req = GetpidReq(static_cast<uint64_t>(i));
        while (!ring.Submit(req)) {
          std::this_thread::yield();
        }
      }
    });
    const Pid self = ctx.Getpid();
    int reaped = 0;
    int bad = 0;
    SyscallCompletion comp;
    while (reaped < kTotal) {
      ctx.DrainRing();
      while (ctx.Reap(&comp)) {
        if (comp.user_data != static_cast<uint64_t>(reaped) || comp.status != 0 ||
            comp.result.rv[0] != self) {
          ++bad;
        }
        ++reaped;
      }
      std::this_thread::yield();
    }
    submitter.join();
    return bad == 0 ? 0 : 1;
  });
  EXPECT_EQ(code, 0);
}

TEST(StripeStress, ParallelReadersAcrossDirectorySubtrees) {
  // Eight clients hammer the shared-stripe VFS read path against their own
  // subtrees (distinct stripes by path hash) plus one shared file. Under
  // TSan this validates the striped lock order; the assertions validate that
  // striping didn't change what readers see.
  auto kernel = MakeWorld();
  constexpr int kClients = 8;
  constexpr int kIters = 150;
  const std::string payload(256, 'p');
  const int setup = ExitCodeOf(*kernel, [&payload](ProcessContext& ctx) {
    ctx.Mkdir("/data");
    ctx.WriteWholeFile("/data/shared.dat", payload);
    for (int c = 0; c < kClients; ++c) {
      ctx.Mkdir(StringPrintf("/data/c%d", c));
      ctx.WriteWholeFile(StringPrintf("/data/c%d/f.dat", c), payload);
    }
    return 0;
  });
  ASSERT_EQ(setup, 0);

  std::vector<Pid> pids;
  for (int c = 0; c < kClients; ++c) {
    SpawnOptions options;
    options.body = [c, &payload](ProcessContext& ctx) {
      const std::string mine = StringPrintf("/data/c%d/f.dat", c);
      char buf[256];
      ia::Stat st{};
      for (int i = 0; i < kIters; ++i) {
        if (ctx.Stat(mine, &st) != 0 || st.st_size != static_cast<Off>(payload.size())) {
          return 1;
        }
        const int fd = ctx.Open(i % 4 == 0 ? "/data/shared.dat" : mine, kORdonly);
        if (fd < 0) {
          return 2;
        }
        if (ctx.Read(fd, buf, sizeof(buf)) != static_cast<int64_t>(sizeof(buf))) {
          return 3;
        }
        if (ctx.Fstat(fd, &st) != 0) {
          return 4;
        }
        ctx.Close(fd);
      }
      return 0;
    };
    const Pid pid = kernel->Spawn(options);
    ASSERT_GT(pid, 0);
    pids.push_back(pid);
  }
  for (const Pid pid : pids) {
    const int status = kernel->HostWaitPid(pid);
    ASSERT_TRUE(WifExited(status));
    EXPECT_EQ(WExitStatus(status), 0);
  }
}

TEST(StripeStress, ReadersScanWhileWritersChurnTheTree) {
  // Shared single-stripe readers racing exclusive all-stripe writers
  // (create/unlink churn). Correctness: readers of the stable file never see
  // a torn result, and the churned files resolve to a consistent final state.
  auto kernel = MakeWorld();
  const std::string payload(128, 's');
  const int setup = ExitCodeOf(*kernel, [&payload](ProcessContext& ctx) {
    ctx.Mkdir("/mix");
    ctx.WriteWholeFile("/mix/stable.dat", payload);
    return 0;
  });
  ASSERT_EQ(setup, 0);

  std::vector<Pid> pids;
  for (int r = 0; r < 4; ++r) {
    SpawnOptions options;
    options.body = [&payload](ProcessContext& ctx) {
      char buf[128];
      ia::Stat st{};
      for (int i = 0; i < 150; ++i) {
        if (ctx.Stat("/mix/stable.dat", &st) != 0 ||
            st.st_size != static_cast<Off>(payload.size())) {
          return 1;
        }
        const int fd = ctx.Open("/mix/stable.dat", kORdonly);
        if (fd < 0 || ctx.Read(fd, buf, sizeof(buf)) != static_cast<int64_t>(sizeof(buf))) {
          return 2;
        }
        ctx.Close(fd);
        ctx.Access(StringPrintf("/mix/churn%d", i % 8), 0);  // may or may not exist
      }
      return 0;
    };
    pids.push_back(kernel->Spawn(options));
    ASSERT_GT(pids.back(), 0);
  }
  for (int w = 0; w < 2; ++w) {
    SpawnOptions options;
    options.body = [w](ProcessContext& ctx) {
      for (int i = 0; i < 100; ++i) {
        const std::string path = StringPrintf("/mix/churn%d", (w * 4 + i) % 8);
        ctx.WriteWholeFile(path, "c");
        ctx.Unlink(path);
      }
      ctx.WriteWholeFile(StringPrintf("/mix/final%d", w), "done");
      return 0;
    };
    pids.push_back(kernel->Spawn(options));
    ASSERT_GT(pids.back(), 0);
  }
  for (const Pid pid : pids) {
    const int status = kernel->HostWaitPid(pid);
    ASSERT_TRUE(WifExited(status));
    EXPECT_EQ(WExitStatus(status), 0);
  }
  EXPECT_EQ(FileContents(*kernel, "/mix/final0"), "done");
  EXPECT_EQ(FileContents(*kernel, "/mix/final1"), "done");
}

TEST(TreeLock, StripeCountClampsAndRoundsToPowerOfTwo) {
  TreeLock lock;
  EXPECT_EQ(lock.stripe_count(), TreeLock::kDefaultStripes);
  lock.SetStripeCount(0);
  EXPECT_EQ(lock.stripe_count(), 1);
  lock.SetStripeCount(5);
  EXPECT_EQ(lock.stripe_count(), 4);
  lock.SetStripeCount(100);
  EXPECT_EQ(lock.stripe_count(), TreeLock::kMaxStripes);
  lock.SetStripeCount(8);
  EXPECT_EQ(lock.stripe_count(), 8);
}

TEST(TreeLock, SingleStripeConfigBehavesIdentically) {
  // stripes=1 reproduces the old single shared_mutex; the whole mixed
  // workload (including the ring path) must behave exactly the same.
  for (const int stripes : {1, 16}) {
    KernelConfig config;
    config.tree_lock_stripes = stripes;
    Kernel kernel(config);
    InstallStandardPrograms(kernel);
    EXPECT_EQ(kernel.fs().TreeMutex().stripe_count(), stripes);
    std::string digest;
    const int code = ExitCodeOf(kernel, [&digest](ProcessContext& ctx) {
      digest = RunMixedWorkload(ctx, /*via_ring=*/true, /*iterations=*/6);
      return 0;
    });
    EXPECT_EQ(code, 0) << "stripes=" << stripes;
    EXPECT_FALSE(digest.empty());
  }
}

TEST(FdTableStress, LeafMutexSurvivesConcurrentMutation) {
  // The descriptor table's internal leaf mutex: one thread churns slots while
  // another reads and clones. (In the kernel the second thread is a sibling
  // ring submitter's fd-keyed batch; here we drive the table directly.)
  FdTable table;
  constexpr int kIters = 2000;
  std::thread mutator([&table]() {
    for (int i = 0; i < kIters; ++i) {
      const int fd = i % 16;
      table.Set(fd, std::make_shared<OpenFile>());
      if (i % 3 == 0) {
        table.Close(fd);
      }
      if (i % 7 == 0) {
        table.Dup2(fd, (fd + 1) % 16);
      }
    }
  });
  int64_t observed = 0;
  for (int i = 0; i < kIters; ++i) {
    observed += table.OpenCount();
    observed += table.Valid(i % 16) ? 1 : 0;
    OpenFileRef ref = table.Get(i % 16);
    if (i % 50 == 0) {
      FdTable clone = table.Clone();
      observed += clone.OpenCount();
    }
  }
  mutator.join();
  table.CloseAll();
  EXPECT_EQ(table.OpenCount(), 0);
  EXPECT_GE(observed, 0);
}

}  // namespace
}  // namespace ia
