// Shared fixtures and helpers for the test suites.
#ifndef TESTS_TEST_HELPERS_H_
#define TESTS_TEST_HELPERS_H_

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "src/apps/apps.h"
#include "src/interpose/agent.h"
#include "src/kernel/kernel.h"

namespace ia {
namespace test {

inline std::unique_ptr<Kernel> MakeWorld() {
  auto kernel = std::make_unique<Kernel>();
  InstallStandardPrograms(*kernel);
  return kernel;
}

// Runs `body` as a process; returns the wait status.
inline int RunBody(Kernel& kernel, std::function<int(ProcessContext&)> body,
                   const std::string& cwd = "/") {
  SpawnOptions options;
  options.body = std::move(body);
  options.cwd = cwd;
  const Pid pid = kernel.Spawn(options);
  EXPECT_GT(pid, 0);
  return kernel.HostWaitPid(pid);
}

// Runs `body` under `agents`; returns the wait status.
inline int RunBodyUnder(Kernel& kernel, const std::vector<AgentRef>& agents,
                        std::function<int(ProcessContext&)> body, const std::string& cwd = "/") {
  SpawnOptions options;
  options.body = std::move(body);
  options.cwd = cwd;
  return RunUnderAgents(kernel, agents, options);
}

// Exit code of a body run (asserts normal exit).
inline int ExitCodeOf(Kernel& kernel, std::function<int(ProcessContext&)> body) {
  const int status = RunBody(kernel, std::move(body));
  EXPECT_TRUE(WifExited(status));
  return WExitStatus(status);
}

// Host-side peek at a simulated file. Returns "<missing>" when absent.
inline std::string FileContents(Kernel& kernel, const std::string& file_path) {
  Cred root;
  NameiEnv env{kernel.fs().root(), kernel.fs().root(), &root};
  NameiResult nr;
  if (kernel.fs().Namei(env, file_path, NameiOp::kLookup, true, &nr) != 0 ||
      nr.inode == nullptr) {
    return "<missing>";
  }
  return nr.inode->data;
}

// Deterministic snapshot of the whole filesystem: path -> "type:mode:content".
// Used by the transparency property tests.
inline std::map<std::string, std::string> SnapshotFs(Kernel& kernel,
                                                     const std::string& skip_prefix = "") {
  std::map<std::string, std::string> snapshot;
  std::function<void(const InodeRef&, const std::string&)> walk =
      [&](const InodeRef& dir, const std::string& prefix) {
        for (const auto& [name, child] : dir->entries) {
          const std::string full = prefix + "/" + name;
          if (!skip_prefix.empty() && full.rfind(skip_prefix, 0) == 0) {
            continue;
          }
          std::string value;
          switch (child->type()) {
            case InodeType::kRegular:
              value = "f:" + std::to_string(child->mode_bits) + ":" + child->data;
              break;
            case InodeType::kDirectory:
              value = "d:" + std::to_string(child->mode_bits);
              break;
            case InodeType::kSymlink:
              value = "l:" + child->symlink_target;
              break;
            default:
              value = "o";
              break;
          }
          snapshot[full] = value;
          if (child->IsDirectory()) {
            walk(child, full);
          }
        }
      };
  walk(kernel.fs().root(), "");
  return snapshot;
}

}  // namespace test
}  // namespace ia

#endif  // TESTS_TEST_HELPERS_H_
