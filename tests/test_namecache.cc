// Unit tests for the directory name-lookup cache (DNLC): hit/miss/negative
// accounting, generation-based invalidation on every mutating path operation,
// LRU bounds, weak-reference hygiene, and transparency of cached resolution.
#include <gtest/gtest.h>

#include "src/kernel/namecache.h"
#include "src/kernel/vfs.h"
#include "tests/test_helpers.h"

namespace ia {
namespace {

using test::ExitCodeOf;
using test::MakeWorld;

class NameCacheVfsTest : public ::testing::Test {
 protected:
  NameCacheVfsTest() : env_{fs_.root(), fs_.root(), &cred_} {}

  int Lookup(const std::string& p, InodeRef* out = nullptr) {
    NameiResult nr;
    const int err = fs_.Namei(env_, p, NameiOp::kLookup, /*follow_final=*/true, &nr);
    if (out != nullptr) {
      *out = nr.inode;
    }
    return err;
  }

  NameCacheStats Stats() const { return fs_.namecache().stats(); }

  Filesystem fs_;
  Cred cred_;
  NameiEnv env_;
};

TEST_F(NameCacheVfsTest, RepeatedLookupHitsCache) {
  fs_.MkdirAll("/a/b/c");
  fs_.InstallFile("/a/b/c/f", "x");
  fs_.namecache().ResetStats();

  EXPECT_EQ(Lookup("/a/b/c/f"), 0);  // cold: all misses, then inserts
  const NameCacheStats cold = Stats();
  EXPECT_EQ(cold.hits, 0u);
  EXPECT_EQ(cold.misses, 4u);
  EXPECT_EQ(cold.insertions, 4u);

  EXPECT_EQ(Lookup("/a/b/c/f"), 0);  // warm: every component served by cache
  const NameCacheStats warm = Stats();
  EXPECT_EQ(warm.hits, 4u);
  EXPECT_EQ(warm.misses, cold.misses);
}

TEST_F(NameCacheVfsTest, NegativeEntryShortCircuitsRepeatedEnoent) {
  fs_.MkdirAll("/dir");
  fs_.namecache().ResetStats();

  EXPECT_EQ(Lookup("/dir/missing"), -kENoent);
  EXPECT_EQ(Stats().negative_hits, 0u);
  EXPECT_EQ(Lookup("/dir/missing"), -kENoent);
  EXPECT_EQ(Stats().negative_hits, 1u);
}

TEST_F(NameCacheVfsTest, CreateInvalidatesNegativeEntry) {
  fs_.MkdirAll("/dir");
  EXPECT_EQ(Lookup("/dir/f"), -kENoent);
  EXPECT_EQ(Lookup("/dir/f"), -kENoent);  // negative entry now cached

  InodeRef opened;
  ASSERT_EQ(fs_.Open(env_, "/dir/f", kOCreat | kOWronly, 0644, &opened), 0);
  InodeRef found;
  EXPECT_EQ(Lookup("/dir/f", &found), 0);  // stale negative must not survive
  EXPECT_EQ(found, opened);
}

TEST_F(NameCacheVfsTest, UnlinkInvalidatesPositiveEntry) {
  fs_.InstallFile("/f", "x");
  EXPECT_EQ(Lookup("/f"), 0);
  EXPECT_EQ(Lookup("/f"), 0);  // cached
  ASSERT_EQ(fs_.Unlink(env_, "/f"), 0);
  EXPECT_EQ(Lookup("/f"), -kENoent);
}

TEST_F(NameCacheVfsTest, RenameInvalidatesBothNames) {
  fs_.MkdirAll("/d1");
  fs_.MkdirAll("/d2");
  fs_.InstallFile("/d1/src", "payload");
  EXPECT_EQ(Lookup("/d1/src"), 0);
  EXPECT_EQ(Lookup("/d2/dst"), -kENoent);
  EXPECT_EQ(Lookup("/d1/src"), 0);       // positive cached
  EXPECT_EQ(Lookup("/d2/dst"), -kENoent);  // negative cached

  ASSERT_EQ(fs_.Rename(env_, "/d1/src", "/d2/dst"), 0);
  EXPECT_EQ(Lookup("/d1/src"), -kENoent);
  InodeRef moved;
  EXPECT_EQ(Lookup("/d2/dst", &moved), 0);
  EXPECT_EQ(moved->data, "payload");
}

TEST_F(NameCacheVfsTest, RmdirAndMkdirReuseName) {
  fs_.MkdirAll("/parent/kid");
  EXPECT_EQ(Lookup("/parent/kid"), 0);
  EXPECT_EQ(Lookup("/parent/kid"), 0);
  ASSERT_EQ(fs_.Rmdir(env_, "/parent/kid"), 0);
  EXPECT_EQ(Lookup("/parent/kid"), -kENoent);
  ASSERT_EQ(fs_.Mkdir(env_, "/parent/kid", 0755), 0);
  InodeRef again;
  EXPECT_EQ(Lookup("/parent/kid", &again), 0);
  EXPECT_TRUE(again->IsDirectory());
}

TEST_F(NameCacheVfsTest, HardLinkAndSymlinkCreationInvalidate) {
  fs_.InstallFile("/orig", "x");
  fs_.MkdirAll("/d");
  EXPECT_EQ(Lookup("/d/ln"), -kENoent);
  EXPECT_EQ(Lookup("/d/ln"), -kENoent);
  ASSERT_EQ(fs_.Link(env_, "/orig", "/d/ln"), 0);
  EXPECT_EQ(Lookup("/d/ln"), 0);

  EXPECT_EQ(Lookup("/d/sym"), -kENoent);
  EXPECT_EQ(Lookup("/d/sym"), -kENoent);
  ASSERT_EQ(fs_.Symlink(env_, "/orig", "/d/sym"), 0);
  InodeRef via;
  EXPECT_EQ(Lookup("/d/sym", &via), 0);
  EXPECT_EQ(via->data, "x");
}

TEST_F(NameCacheVfsTest, ChmodOfDirectoryBumpsGeneration) {
  fs_.MkdirAll("/locked");
  fs_.InstallFile("/locked/f", "x");
  EXPECT_EQ(Lookup("/locked/f"), 0);
  const uint64_t before = Stats().invalidations;
  ASSERT_EQ(fs_.Chmod(env_, "/locked", 0700), 0);
  EXPECT_GT(Stats().invalidations, before);
  // Lookup correctness under the new mode is still enforced live by Namei.
  Cred other;
  other.ruid = other.euid = 1000;
  other.rgid = other.egid = 1000;
  NameiEnv other_env{fs_.root(), fs_.root(), &other};
  NameiResult nr;
  EXPECT_EQ(fs_.Namei(other_env, "/locked/f", NameiOp::kLookup, true, &nr), -kEAcces);
}

TEST_F(NameCacheVfsTest, SymlinkComponentsAreNotCached) {
  fs_.InstallFile("/target", "x");
  ASSERT_EQ(fs_.Symlink(env_, "/target", "/ln"), 0);
  fs_.namecache().ResetStats();
  EXPECT_EQ(Lookup("/ln"), 0);
  EXPECT_EQ(Lookup("/ln"), 0);
  // "target" may be cached, but the symlink inode "ln" itself never is: each
  // walk re-expands it, so at least one miss per lookup remains.
  const NameCacheStats stats = Stats();
  EXPECT_GE(stats.misses, 2u);
}

TEST_F(NameCacheVfsTest, DotAndDotDotBypassTheCache) {
  fs_.MkdirAll("/a/b");
  fs_.namecache().ResetStats();
  EXPECT_EQ(Lookup("/a/b/.."), 0);
  EXPECT_EQ(Lookup("/a/b/.."), 0);
  EXPECT_EQ(Lookup("/a/."), 0);
  const NameCacheStats stats = Stats();
  // Only "a" and "b" ever enter the cache; dot components never do.
  EXPECT_EQ(stats.insertions, 2u);
}

TEST_F(NameCacheVfsTest, DisabledCacheNeverHitsAndStaysEmpty) {
  fs_.namecache().set_enabled(false);
  fs_.namecache().ResetStats();
  fs_.InstallFile("/f", "x");
  EXPECT_EQ(Lookup("/f"), 0);
  EXPECT_EQ(Lookup("/f"), 0);
  const NameCacheStats stats = Stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.insertions, 0u);
  EXPECT_EQ(stats.size, 0u);
}

TEST_F(NameCacheVfsTest, ResolutionIdenticalWithCacheOnAndOff) {
  // A mutation-churn script must produce byte-identical outcomes either way.
  const auto run_script = [](Filesystem& fs, std::vector<int>* results) {
    Cred cred;
    NameiEnv env{fs.root(), fs.root(), &cred};
    fs.MkdirAll("/w");
    for (int i = 0; i < 50; ++i) {
      const std::string name = "/w/f" + std::to_string(i % 7);
      InodeRef out;
      results->push_back(fs.Open(env, name, kOCreat | kORdwr, 0644, &out));
      NameiResult nr;
      results->push_back(fs.Namei(env, name, NameiOp::kLookup, true, &nr));
      if (i % 3 == 0) {
        results->push_back(fs.Unlink(env, name));
        results->push_back(fs.Namei(env, name, NameiOp::kLookup, true, &nr));
      }
      if (i % 5 == 0) {
        results->push_back(fs.Rename(env, name, "/w/renamed"));
      }
    }
  };
  std::vector<int> with_cache;
  {
    Filesystem fs;
    run_script(fs, &with_cache);
  }
  std::vector<int> without_cache;
  {
    Filesystem fs;
    fs.namecache().set_enabled(false);
    run_script(fs, &without_cache);
  }
  EXPECT_EQ(with_cache, without_cache);
}

TEST(NameCacheUnit, LruEvictsOldestEntry) {
  NameCache cache(/*capacity=*/2);
  auto dir = std::make_shared<Inode>(100, InodeType::kDirectory, 0755, 0, 0);
  auto a = std::make_shared<Inode>(101, InodeType::kRegular, 0644, 0, 0);
  auto b = std::make_shared<Inode>(102, InodeType::kRegular, 0644, 0, 0);
  auto c = std::make_shared<Inode>(103, InodeType::kRegular, 0644, 0, 0);

  cache.InsertPositive(*dir, "a", a);
  cache.InsertPositive(*dir, "b", b);
  InodeRef out;
  EXPECT_EQ(cache.Lookup(*dir, "a", &out), NameCache::Outcome::kHit);  // promote "a"
  cache.InsertPositive(*dir, "c", c);                                  // evicts "b"
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.Lookup(*dir, "b", &out), NameCache::Outcome::kMiss);
  EXPECT_EQ(cache.Lookup(*dir, "a", &out), NameCache::Outcome::kHit);
  EXPECT_EQ(cache.Lookup(*dir, "c", &out), NameCache::Outcome::kHit);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(NameCacheUnit, WeakReferenceDoesNotExtendInodeLifetime) {
  NameCache cache(8);
  auto dir = std::make_shared<Inode>(100, InodeType::kDirectory, 0755, 0, 0);
  auto child = std::make_shared<Inode>(101, InodeType::kRegular, 0644, 0, 0);
  cache.InsertPositive(*dir, "x", child);
  std::weak_ptr<Inode> watch = child;
  child.reset();
  EXPECT_TRUE(watch.expired());  // the cache held no strong reference
  InodeRef out;
  EXPECT_EQ(cache.Lookup(*dir, "x", &out), NameCache::Outcome::kMiss);
  EXPECT_EQ(cache.size(), 0u);  // expired entry was dropped
}

TEST(NameCacheUnit, GenerationInvalidationIsLazy) {
  NameCache cache(8);
  auto dir = std::make_shared<Inode>(100, InodeType::kDirectory, 0755, 0, 0);
  auto child = std::make_shared<Inode>(101, InodeType::kRegular, 0644, 0, 0);
  cache.InsertPositive(*dir, "x", child);
  cache.InsertNegative(*dir, "y");
  EXPECT_EQ(cache.size(), 2u);
  cache.InvalidateDir(*dir);  // O(1): nothing walked, entries stale out on touch
  EXPECT_EQ(cache.size(), 2u);
  InodeRef out;
  EXPECT_EQ(cache.Lookup(*dir, "x", &out), NameCache::Outcome::kMiss);
  EXPECT_EQ(cache.Lookup(*dir, "y", &out), NameCache::Outcome::kMiss);
  // Stale nodes linger (they age out through LRU) so a re-insert after the
  // directory re-search refreshes them in place instead of reallocating.
  EXPECT_EQ(cache.size(), 2u);
  const uint64_t insertions_before = cache.stats().insertions;
  cache.InsertPositive(*dir, "x", child);
  EXPECT_EQ(cache.stats().insertions, insertions_before);  // refreshed, not added
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Lookup(*dir, "x", &out), NameCache::Outcome::kHit);
  EXPECT_EQ(out, child);
}

TEST(NameCacheUnit, SymlinkChildrenAreRefused) {
  NameCache cache(8);
  auto dir = std::make_shared<Inode>(100, InodeType::kDirectory, 0755, 0, 0);
  auto link = std::make_shared<Inode>(101, InodeType::kSymlink, 0777, 0, 0);
  cache.InsertPositive(*dir, "ln", link);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(NameCacheKernel, CacheStatsVisibleThroughKernel) {
  auto kernel = MakeWorld();
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              Stat st;
              for (int i = 0; i < 10; ++i) {
                if (ctx.Stat("/etc/motd", &st) != 0) {
                  return 1;
                }
              }
              return 0;
            }),
            0);
  const NameCacheStats stats = kernel->CacheStats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.insertions, 0u);
  EXPECT_EQ(stats.capacity, NameCache::kDefaultCapacity);
}

TEST(NameCacheKernel, ChrootKeepsLookupsCorrect) {
  auto kernel = MakeWorld();
  kernel->fs().MkdirAll("/jail/sub");
  kernel->fs().InstallFile("/jail/sub/f", "inside");
  kernel->fs().InstallFile("/f", "outside");
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              Stat st;
              // Warm the cache on the outside view first.
              if (ctx.Stat("/f", &st) != 0 || ctx.Stat("/jail/sub/f", &st) != 0) {
                return 1;
              }
              if (ctx.Chroot("/jail") != 0) {
                return 2;
              }
              // ".." at the new root must stay put (never cached), and names
              // resolve relative to the jail.
              if (ctx.Stat("/../../sub/f", &st) != 0) {
                return 3;
              }
              if (ctx.Stat("/f", &st) != -kENoent) {
                return 4;  // the outside "/f" must not leak through the cache
              }
              return 0;
            }),
            0);
}

}  // namespace
}  // namespace ia
