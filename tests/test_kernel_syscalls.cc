// Per-syscall behaviour tests against the simulated 4.3BSD kernel, driven
// through real process contexts (the same path agents interpose on).
#include "tests/test_helpers.h"

#include "src/base/strings.h"
#include "src/kernel/direntry_codec.h"

namespace ia {
namespace {

using test::ExitCodeOf;
using test::FileContents;
using test::MakeWorld;
using test::RunBody;

TEST(Syscalls, OpenErrnoMatrix) {
  auto kernel = MakeWorld();
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              if (ctx.Open("/missing", kORdonly) != -kENoent) {
                return 1;
              }
              if (ctx.Open("/missing/sub", kOCreat | kOWronly) != -kENoent) {
                return 2;
              }
              if (ctx.Open("/etc", kOWronly) != -kEIsdir) {
                return 3;
              }
              const int fd = ctx.Open("/tmp/x", kOCreat | kOWronly, 0644);
              if (fd < 0) {
                return 4;
              }
              if (ctx.Open("/tmp/x", kOCreat | kOExcl | kOWronly) != -kEExist) {
                return 5;
              }
              return 0;
            }),
            0);
}

TEST(Syscalls, ReadWriteBadFd) {
  auto kernel = MakeWorld();
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              char buf[8];
              if (ctx.Read(99, buf, 8) != -kEBadf) {
                return 1;
              }
              if (ctx.Write(99, buf, 8) != -kEBadf) {
                return 2;
              }
              if (ctx.Close(99) != -kEBadf) {
                return 3;
              }
              const int fd = ctx.Open("/etc/motd", kORdonly);
              if (ctx.Write(fd, buf, 8) != -kEBadf) {
                return 4;  // read-only descriptor
              }
              const int wfd = ctx.Open("/tmp/w", kOCreat | kOWronly, 0644);
              if (ctx.Read(wfd, buf, 8) != -kEBadf) {
                return 5;  // write-only descriptor
              }
              return 0;
            }),
            0);
}

TEST(Syscalls, LseekAndSparseExtension) {
  auto kernel = MakeWorld();
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              const int fd = ctx.Open("/tmp/s", kOCreat | kORdwr, 0644);
              ctx.WriteString(fd, "0123456789");
              if (ctx.Lseek(fd, 2, kSeekSet) != 2) {
                return 1;
              }
              char c;
              ctx.Read(fd, &c, 1);
              if (c != '2') {
                return 2;
              }
              if (ctx.Lseek(fd, -1, kSeekEnd) != 9) {
                return 3;
              }
              if (ctx.Lseek(fd, 2, kSeekCur) != 11) {
                return 4;  // seeking past EOF is legal
              }
              ctx.WriteString(fd, "X");  // creates a hole
              ia::Stat st;
              ctx.Fstat(fd, &st);
              if (st.st_size != 12) {
                return 5;
              }
              if (ctx.Lseek(fd, -100, kSeekSet) != -kEInval) {
                return 6;
              }
              if (ctx.Lseek(fd, 0, 99) != -kEInval) {
                return 7;
              }
              return 0;
            }),
            0);
  EXPECT_EQ(FileContents(*kernel, "/tmp/s").substr(10), std::string("\0X", 2));
}

TEST(Syscalls, AppendModeAlwaysWritesAtEnd) {
  auto kernel = MakeWorld();
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              ctx.WriteWholeFile("/tmp/log", "start:");
              const int fd = ctx.Open("/tmp/log", kOWronly | kOAppend);
              ctx.Lseek(fd, 0, kSeekSet);  // append ignores the offset
              ctx.WriteString(fd, "one");
              ctx.WriteString(fd, ":two");
              ctx.Close(fd);
              return 0;
            }),
            0);
  EXPECT_EQ(FileContents(*kernel, "/tmp/log"), "start:one:two");
}

TEST(Syscalls, DupSharesOffsetDup2Replaces) {
  auto kernel = MakeWorld();
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              ctx.WriteWholeFile("/tmp/d", "abcdef");
              const int fd = ctx.Open("/tmp/d", kORdonly);
              const int dup_fd = ctx.Dup(fd);
              if (dup_fd < 0 || dup_fd == fd) {
                return 1;
              }
              char c;
              ctx.Read(fd, &c, 1);
              ctx.Read(dup_fd, &c, 1);
              if (c != 'b') {
                return 2;  // shared offset
              }
              const int target = 10;
              if (ctx.Dup2(fd, target) != target) {
                return 3;
              }
              ctx.Read(target, &c, 1);
              if (c != 'c') {
                return 4;
              }
              if (ctx.Dup2(fd, fd) != fd) {
                return 5;
              }
              if (ctx.Dup2(99, 5) != -kEBadf) {
                return 6;
              }
              if (ctx.Dup2(fd, -1) != -kEBadf) {
                return 7;
              }
              return 0;
            }),
            0);
}

TEST(Syscalls, FcntlDupfdAndFlags) {
  auto kernel = MakeWorld();
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              const int fd = ctx.Open("/etc/motd", kORdonly);
              const int high = ctx.Fcntl(fd, kFDupfd, 20);
              if (high < 20) {
                return 1;
              }
              if (ctx.Fcntl(fd, kFGetfd, 0) != 0) {
                return 2;
              }
              ctx.Fcntl(fd, kFSetfd, 1);
              if (ctx.Fcntl(fd, kFGetfd, 0) != 1) {
                return 3;
              }
              const int wfd = ctx.Open("/tmp/f", kOCreat | kOWronly, 0644);
              ctx.Fcntl(wfd, kFSetfl, kOAppend);
              if ((ctx.Fcntl(wfd, kFGetfl, 0) & kOAppend) == 0) {
                return 4;
              }
              if (ctx.Fcntl(fd, 777, 0) != -kEInval) {
                return 5;
              }
              return 0;
            }),
            0);
}

TEST(Syscalls, GetdirentriesPaginatesAndResumes) {
  auto kernel = MakeWorld();
  for (int i = 0; i < 40; ++i) {
    kernel->fs().InstallFile(StringPrintf("/many/file-with-a-long-name-%02d", i), "x");
  }
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              const int fd = ctx.Open("/many", kORdonly);
              if (fd < 0) {
                return 1;
              }
              char buf[256];  // forces several getdirentries calls
              int64_t base = 0;
              int entries = 0;
              int calls = 0;
              for (;;) {
                const int n = ctx.Getdirentries(fd, buf, sizeof(buf), &base);
                if (n < 0) {
                  return 2;
                }
                if (n == 0) {
                  break;
                }
                ++calls;
                entries += static_cast<int>(DecodeDirents(buf, n).size());
              }
              if (entries != 42) {
                return 3;  // 40 files + "." + ".."
              }
              if (calls < 3) {
                return 4;  // must have paginated
              }
              // Rewind via lseek and count again.
              ctx.Lseek(fd, 0, kSeekSet);
              const int n = ctx.Getdirentries(fd, buf, sizeof(buf), &base);
              if (n <= 0) {
                return 5;
              }
              return 0;
            }),
            0);
}

TEST(Syscalls, GetdirentriesErrors) {
  auto kernel = MakeWorld();
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              const int fd = ctx.Open("/etc/motd", kORdonly);
              char buf[512];
              int64_t base = 0;
              if (ctx.Getdirentries(fd, buf, sizeof(buf), &base) != -kENotdir) {
                return 1;
              }
              const int dirfd = ctx.Open("/etc", kORdonly);
              if (ctx.Getdirentries(dirfd, buf, 4, &base) != -kEInval) {
                return 2;  // no record fits in 4 bytes
              }
              return 0;
            }),
            0);
}

TEST(Syscalls, UmaskAppliesToCreation) {
  auto kernel = MakeWorld();
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              const Mode old = ctx.Umask(077);
              if (old != 022) {
                return 1;  // default umask
              }
              ctx.Close(ctx.Open("/tmp/masked", kOCreat | kOWronly, 0777));
              ia::Stat st;
              ctx.Stat("/tmp/masked", &st);
              if ((st.st_mode & 0777) != 0700) {
                return 2;
              }
              ctx.Mkdir("/tmp/mdir", 0777);
              ctx.Stat("/tmp/mdir", &st);
              if ((st.st_mode & 0777) != 0700) {
                return 3;
              }
              return 0;
            }),
            0);
}

TEST(Syscalls, DevicesBehave) {
  auto kernel = MakeWorld();
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              char buf[16];
              const int null_fd = ctx.Open("/dev/null", kORdwr);
              if (ctx.Read(null_fd, buf, 16) != 0) {
                return 1;  // EOF immediately
              }
              if (ctx.Write(null_fd, buf, 16) != 16) {
                return 2;  // swallows everything
              }
              const int zero_fd = ctx.Open("/dev/zero", kORdonly);
              buf[3] = 'x';
              if (ctx.Read(zero_fd, buf, 16) != 16 || buf[3] != 0) {
                return 3;
              }
              const int rand_fd = ctx.Open("/dev/random", kORdonly);
              if (ctx.Read(rand_fd, buf, 16) != 16) {
                return 4;
              }
              ia::Stat st;
              ctx.Stat("/dev/null", &st);
              if (!SIsChr(st.st_mode)) {
                return 5;
              }
              return 0;
            }),
            0);
}

TEST(Syscalls, IoctlOnlyOnDevices) {
  auto kernel = MakeWorld();
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              const int tty = ctx.Open("/dev/tty", kORdonly);
              uint16_t dims[2] = {0, 0};
              if (ctx.Ioctl(tty, kTiocGwinsz, dims) != 0 || dims[1] != 80) {
                return 1;
              }
              const int file = ctx.Open("/etc/motd", kORdonly);
              if (ctx.Ioctl(file, kTiocGwinsz, dims) != -kENotty) {
                return 2;
              }
              if (ctx.Ioctl(tty, 0xbad, nullptr) != -kENotty) {
                return 3;
              }
              return 0;
            }),
            0);
}

TEST(Syscalls, IdentityCalls) {
  auto kernel = MakeWorld();
  SpawnOptions options;
  options.uid = 7;
  options.gid = 8;
  options.body = [](ProcessContext& ctx) {
    if (ctx.Getuid() != 7 || ctx.Geteuid() != 7) {
      return 1;
    }
    if (ctx.Getgid() != 8 || ctx.Getegid() != 8) {
      return 2;
    }
    if (ctx.Setuid(0) != -kEPerm) {
      return 3;  // non-root cannot become root
    }
    if (ctx.Setuid(7) != 0) {
      return 4;  // setting to own real uid is fine
    }
    Gid groups[4] = {};
    if (ctx.Getgroups(4, groups) != 0) {
      return 5;  // none set
    }
    char login[64];
    if (ctx.Getlogin(login, sizeof(login)) != 0) {
      return 6;
    }
    return 0;
  };
  const Pid pid = kernel->Spawn(options);
  EXPECT_EQ(WExitStatus(kernel->HostWaitPid(pid)), 0);
}

TEST(Syscalls, HostnameAndLogin) {
  auto kernel = MakeWorld();
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              char buf[64];
              ctx.Gethostname(buf, sizeof(buf));
              if (std::string(buf) != "vax6250") {
                return 1;
              }
              if (ctx.Sethostname("newname") != 0) {
                return 2;  // we're root
              }
              ctx.Gethostname(buf, sizeof(buf));
              if (std::string(buf) != "newname") {
                return 3;
              }
              if (ctx.Setlogin("mbj") != 0) {
                return 4;
              }
              ctx.Getlogin(buf, sizeof(buf));
              if (std::string(buf) != "mbj") {
                return 5;
              }
              return 0;
            }),
            0);
}

TEST(Syscalls, TimeVirtualClockAdvances) {
  auto kernel = MakeWorld();
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              TimeVal before;
              ctx.Gettimeofday(&before, nullptr);
              if (before.tv_sec < 725846400) {
                return 1;  // 1993 epoch
              }
              ctx.Compute(5'000'000);  // five virtual seconds of work
              TimeVal after;
              ctx.Gettimeofday(&after, nullptr);
              if (after.tv_sec - before.tv_sec < 4) {
                return 2;
              }
              TimeVal setto{800000000, 0};
              if (ctx.Settimeofday(&setto, nullptr) != 0) {
                return 3;
              }
              ctx.Gettimeofday(&after, nullptr);
              if (after.tv_sec < 800000000) {
                return 4;
              }
              return 0;
            }),
            0);
}

TEST(Syscalls, GetrusageCountsActivity) {
  auto kernel = MakeWorld();
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              for (int i = 0; i < 10; ++i) {
                ctx.Getpid();
              }
              ctx.Compute(1000);
              Rusage usage;
              if (ctx.Getrusage(kRusageSelf, &usage) != 0) {
                return 1;
              }
              if (usage.ru_nsyscalls < 10) {
                return 2;
              }
              if (usage.ru_utime.tv_usec + usage.ru_utime.tv_sec * 1000000 < 1000) {
                return 3;
              }
              if (ctx.Getrusage(42, &usage) != -kEInval) {
                return 4;
              }
              return 0;
            }),
            0);
}

TEST(Syscalls, ChdirAndGetwd) {
  auto kernel = MakeWorld();
  kernel->fs().MkdirAll("/deep/nested/dir");
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              if (ctx.Chdir("/deep/nested/dir") != 0) {
                return 1;
              }
              std::string wd;
              if (ctx.Getwd(&wd) != 0 || wd != "/deep/nested/dir") {
                return 2;
              }
              if (ctx.Chdir("..") != 0) {
                return 3;
              }
              ctx.Getwd(&wd);
              if (wd != "/deep/nested") {
                return 4;
              }
              if (ctx.Chdir("/etc/motd") != -kENotdir) {
                return 5;
              }
              if (ctx.Chdir("/absent") != -kENoent) {
                return 6;
              }
              const int fd = ctx.Open("/deep", kORdonly);
              if (ctx.Fchdir(fd) != 0) {
                return 7;
              }
              ctx.Getwd(&wd);
              return wd == "/deep" ? 0 : 8;
            }),
            0);
}

TEST(Syscalls, ChrootConfinesNamespace) {
  auto kernel = MakeWorld();
  kernel->fs().MkdirAll("/jail/etc");
  kernel->fs().InstallFile("/jail/etc/inside", "jailed");
  kernel->fs().InstallFile("/etc/outside", "free");
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              if (ctx.Chroot("/jail") != 0) {
                return 1;
              }
              std::string data;
              if (ctx.ReadWholeFile("/etc/inside", &data) != 0 || data != "jailed") {
                return 2;
              }
              if (ctx.ReadWholeFile("/etc/outside", &data) != -kENoent) {
                return 3;
              }
              // ".." cannot escape the jail.
              if (ctx.ReadWholeFile("/../etc/outside", &data) != -kENoent) {
                return 4;
              }
              return 0;
            }),
            0);
}

TEST(Syscalls, FlockAdvisoryLocking) {
  auto kernel = MakeWorld();
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              ctx.WriteWholeFile("/tmp/locked", "x");
              const int a = ctx.Open("/tmp/locked", kORdwr);
              const int b = ctx.Open("/tmp/locked", kORdwr);
              if (ctx.Flock(a, kLockEx) != 0) {
                return 1;
              }
              if (ctx.Flock(b, kLockEx | kLockNb) != -kEWouldblock) {
                return 2;
              }
              if (ctx.Flock(b, kLockSh | kLockNb) != -kEWouldblock) {
                return 3;
              }
              if (ctx.Flock(a, kLockUn) != 0) {
                return 4;
              }
              if (ctx.Flock(b, kLockSh) != 0) {
                return 5;
              }
              if (ctx.Flock(a, kLockSh) != 0) {
                return 6;  // shared locks coexist
              }
              if (ctx.Flock(b, kLockEx | kLockNb) != -kEWouldblock) {
                return 7;  // cannot upgrade past another shared holder
              }
              ctx.Close(a);  // close releases
              if (ctx.Flock(b, kLockEx) != 0) {
                return 8;
              }
              return 0;
            }),
            0);
}

TEST(Syscalls, UnknownSyscallIsEnosys) {
  auto kernel = MakeWorld();
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              SyscallArgs args;
              if (ctx.Syscall(kSysMmap, args, nullptr) != -kENosys) {
                return 1;
              }
              if (ctx.Syscall(188, args, nullptr) != -kENosys) {
                return 2;
              }
              return 0;
            }),
            0);
}

TEST(Syscalls, NamedFifoRoundTrip) {
  auto kernel = MakeWorld();
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              SyscallArgs args;
              const std::string fifo_path = "/tmp/fifo";
              args.SetPtr(0, fifo_path.c_str());
              args.SetInt(1, kSIfifo | 0644);
              if (ctx.Syscall(kSysMknod, args, nullptr) != 0) {
                return 1;
              }
              const int w = ctx.Open("/tmp/fifo", kOWronly);
              const int r = ctx.Open("/tmp/fifo", kORdonly);
              if (w < 0 || r < 0) {
                return 2;
              }
              ctx.WriteString(w, "through the fifo");
              char buf[32] = {};
              const int64_t n = ctx.Read(r, buf, sizeof(buf));
              if (n != 16 || std::string(buf, 16) != "through the fifo") {
                return 3;
              }
              return 0;
            }),
            0);
}


TEST(Syscalls, ReadvWritevScatterGather) {
  auto kernel = MakeWorld();
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              const int fd = ctx.Open("/tmp/vec", kOCreat | kORdwr, 0644);
              char part1[] = "scatter";
              char part2[] = "-";
              char part3[] = "gather";
              IoVec out[3] = {{part1, 7}, {part2, 1}, {part3, 6}};
              if (ctx.Writev(fd, out, 3) != 14) {
                return 1;
              }
              ctx.Lseek(fd, 0, kSeekSet);
              char a[7] = {};
              char b[1] = {};
              char c[8] = {};
              IoVec in[3] = {{a, 7}, {b, 1}, {c, 8}};
              const int64_t n = ctx.Readv(fd, in, 3);
              if (n != 14) {
                return 2;
              }
              if (std::string(a, 7) != "scatter" || b[0] != '-' ||
                  std::string(c, 6) != "gather") {
                return 3;
              }
              // Error cases.
              if (ctx.Readv(fd, nullptr, 1) != -kEFault) {
                return 4;
              }
              if (ctx.Readv(fd, in, 0) != -kEInval) {
                return 5;
              }
              if (ctx.Readv(fd, in, kMaxIoVecs + 1) != -kEInval) {
                return 6;
              }
              if (ctx.Readv(99, in, 1) != -kEBadf) {
                return 7;
              }
              return 0;
            }),
            0);
}

TEST(Syscalls, WritevOnPipe) {
  auto kernel = MakeWorld();
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              int fds[2];
              ctx.Pipe(fds);
              char x[] = "ab";
              char y[] = "cd";
              IoVec parts[2] = {{x, 2}, {y, 2}};
              if (ctx.Writev(fds[1], parts, 2) != 4) {
                return 1;
              }
              char buf[8] = {};
              if (ctx.Read(fds[0], buf, 8) != 4 || std::string(buf, 4) != "abcd") {
                return 2;
              }
              return 0;
            }),
            0);
}

TEST(Syscalls, Dup2SelfPreservesCloseOnExec) {
  auto kernel = MakeWorld();
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              const int fd = ctx.Open("/etc/motd", kORdonly);
              if (fd < 0 || ctx.Fcntl(fd, kFSetfd, 1) != 0) {
                return 1;
              }
              // dup2(fd, fd) is a no-op: it must NOT clear close-on-exec.
              if (ctx.Dup2(fd, fd) != fd) {
                return 2;
              }
              if (ctx.Fcntl(fd, kFGetfd, 0) != 1) {
                return 3;  // the flag survived the self-dup
              }
              return 0;
            }),
            0);
  // Verify at the descriptor-table level too (no fcntl indirection).
  FdTable fds;
  auto file = std::make_shared<OpenFile>();
  fds.Set(3, file, /*close_on_exec=*/true);
  EXPECT_EQ(fds.Dup2(3, 3), 3);
  EXPECT_TRUE(fds.Entry(3)->close_on_exec);
  fds.CloseOnExec();
  EXPECT_FALSE(fds.Valid(3));
}

TEST(Syscalls, Dup2ResultAlwaysHasCloseOnExecClear) {
  FdTable fds;
  auto a = std::make_shared<OpenFile>();
  auto b = std::make_shared<OpenFile>();
  fds.Set(3, a, /*close_on_exec=*/true);
  fds.Set(7, b, /*close_on_exec=*/true);
  // dup2 onto an open cloexec slot: the new descriptor starts with the flag
  // clear, and the source keeps its own flag.
  EXPECT_EQ(fds.Dup2(3, 7), 7);
  EXPECT_FALSE(fds.Entry(7)->close_on_exec);
  EXPECT_TRUE(fds.Entry(3)->close_on_exec);
  EXPECT_EQ(fds.Get(7), fds.Get(3));
  // dup2 onto a closed slot likewise.
  EXPECT_EQ(fds.Dup2(3, 9), 9);
  EXPECT_FALSE(fds.Entry(9)->close_on_exec);
  fds.CloseOnExec();
  EXPECT_FALSE(fds.Valid(3));  // cloexec source dropped
  EXPECT_TRUE(fds.Valid(7));   // duplicates survive exec
  EXPECT_TRUE(fds.Valid(9));
}

TEST(Syscalls, Dup2OntoOpenFdReleasesOldFile) {
  // Replacing a pipe's last write end via dup2 must release that end so
  // readers see EOF instead of blocking forever.
  auto kernel = MakeWorld();
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              int fds[2];
              if (ctx.Pipe(fds) != 0) {
                return 1;
              }
              if (ctx.WriteString(fds[1], "hi") != 0) {
                return 2;
              }
              const int null_fd = ctx.Open("/dev/null", kOWronly);
              if (null_fd < 0) {
                return 3;
              }
              // Overwrites (and thereby closes) the only write end.
              if (ctx.Dup2(null_fd, fds[1]) != fds[1]) {
                return 4;
              }
              char buf[8] = {};
              if (ctx.Read(fds[0], buf, sizeof(buf)) != 2) {
                return 5;  // buffered bytes still readable
              }
              if (ctx.Read(fds[0], buf, sizeof(buf)) != 0) {
                return 6;  // EOF, not a hang: the write end was released
              }
              return 0;
            }),
            0);
  // Descriptor-table view of the same invariant: the displaced OpenFile's
  // pipe-end registration is dropped when its last reference goes.
  auto pipe = std::make_shared<Pipe>();
  {
    FdTable fds;
    fds.Set(4, MakePipeEnd(pipe, /*write_end=*/true));
    fds.Set(5, MakePipeEnd(pipe, /*write_end=*/false));
    EXPECT_EQ(pipe->writers, 1);
    auto replacement = std::make_shared<OpenFile>();
    fds.Set(6, replacement);
    EXPECT_EQ(fds.Dup2(6, 4), 4);  // displaces the write end
    EXPECT_EQ(pipe->writers, 0);
    EXPECT_EQ(pipe->readers, 1);
  }
  EXPECT_EQ(pipe->readers, 0);  // table teardown releases the read end too
}

}  // namespace
}  // namespace ia
