// End-to-end smoke tests: kernel substrate + raw interposition primitive.
#include <gtest/gtest.h>

#include "src/interpose/agent.h"
#include "src/kernel/kernel.h"

namespace ia {
namespace {

int RunBody(Kernel& kernel, std::function<int(ProcessContext&)> body) {
  SpawnOptions options;
  options.body = std::move(body);
  const Pid pid = kernel.Spawn(options);
  EXPECT_GT(pid, 0);
  return kernel.HostWaitPid(pid);
}

TEST(Smoke, SpawnExitStatus) {
  Kernel kernel;
  const int status = RunBody(kernel, [](ProcessContext&) { return 42; });
  ASSERT_TRUE(WifExited(status));
  EXPECT_EQ(WExitStatus(status), 42);
}

TEST(Smoke, FileRoundTrip) {
  Kernel kernel;
  const int status = RunBody(kernel, [](ProcessContext& ctx) {
    if (ctx.WriteWholeFile("/tmp/hello", "hello world") != 0) {
      return 1;
    }
    std::string back;
    if (ctx.ReadWholeFile("/tmp/hello", &back) != 0) {
      return 2;
    }
    return back == "hello world" ? 0 : 3;
  });
  EXPECT_EQ(WExitStatus(status), 0);
}

TEST(Smoke, ForkWaitPipe) {
  Kernel kernel;
  const int status = RunBody(kernel, [](ProcessContext& ctx) {
    int fds[2];
    if (ctx.Pipe(fds) != 0) {
      return 1;
    }
    const Pid child = ctx.Fork([fds](ProcessContext& c) {
      c.Close(fds[0]);
      c.WriteString(fds[1], "from child");
      c.Close(fds[1]);
      return 7;
    });
    if (child <= 0) {
      return 2;
    }
    ctx.Close(fds[1]);
    char buf[64] = {};
    const int64_t n = ctx.Read(fds[0], buf, sizeof(buf));
    if (n != 10 || std::string(buf, 10) != "from child") {
      return 3;
    }
    int child_status = 0;
    if (ctx.Wait4(child, &child_status, 0, nullptr) != child) {
      return 4;
    }
    return WExitStatus(child_status) == 7 ? 0 : 5;
  });
  EXPECT_EQ(WExitStatus(status), 0);
}

TEST(Smoke, ExecveRunsInstalledProgram) {
  Kernel kernel;
  kernel.InstallProgram("/bin/echo42", "echo42", [](ProcessContext& ctx) {
    ctx.WriteString(1, "42\n");
    return 0;
  });
  const int status = RunBody(kernel, [](ProcessContext& ctx) {
    int code = 0;
    if (ctx.Spawn("/bin/echo42", {"echo42"}, &code) != 0) {
      return 1;
    }
    return WExitStatus(code);
  });
  EXPECT_EQ(WExitStatus(status), 0);
  EXPECT_EQ(kernel.console().transcript(), "42\n");
}

TEST(Smoke, SignalHandlerRuns) {
  Kernel kernel;
  const int status = RunBody(kernel, [](ProcessContext& ctx) {
    int got = 0;
    ctx.Sigvec(kSigUsr1, 2, [&got](ProcessContext&, int signo) { got = signo; });
    ctx.Kill(ctx.Getpid(), kSigUsr1);
    return got == kSigUsr1 ? 0 : 1;
  });
  EXPECT_EQ(WExitStatus(status), 0);
}

TEST(Smoke, SigKillTerminates) {
  Kernel kernel;
  const int status = RunBody(kernel, [](ProcessContext& ctx) {
    const Pid child = ctx.Fork([](ProcessContext& c) -> int {
      for (;;) {
        c.Compute(10);
      }
    });
    ctx.Compute(100);
    ctx.Kill(child, kSigKill);
    int child_status = 0;
    ctx.Wait4(child, &child_status, 0, nullptr);
    return WifSignaled(child_status) && WTermSig(child_status) == kSigKill ? 0 : 1;
  });
  EXPECT_EQ(WExitStatus(status), 0);
}

// A raw agent at the interposition layer: adds 100 seconds to gettimeofday.
class PlusHundredAgent final : public Agent {
 public:
  std::string name() const override { return "plus100"; }
  void Init(ProcessContext&, AgentBinding& binding) override {
    binding.InterceptSyscall(kSysGettimeofday);
  }
  SyscallStatus OnSyscall(AgentCall& call) override {
    const SyscallStatus status = call.CallDown();
    auto* tp = call.args().Ptr<TimeVal>(0);
    if (status >= 0 && tp != nullptr) {
      tp->tv_sec += 100;
    }
    return status;
  }
};

TEST(Smoke, AgentInterceptsGettimeofday) {
  Kernel kernel;
  const int64_t epoch = kernel.clock().Now() / 1000000;
  SpawnOptions options;
  options.body = [epoch](ProcessContext& ctx) {
    TimeVal tv;
    ctx.Gettimeofday(&tv, nullptr);
    return tv.tv_sec >= epoch + 100 ? 0 : 1;
  };
  const int status = RunUnderAgents(kernel, {std::make_shared<PlusHundredAgent>()}, options);
  EXPECT_EQ(WExitStatus(status), 0);
}

TEST(Smoke, AgentSurvivesForkAndExec) {
  Kernel kernel;
  kernel.InstallProgram("/bin/timecheck", "timecheck", [](ProcessContext& ctx) {
    TimeVal tv;
    ctx.Gettimeofday(&tv, nullptr);
    return tv.tv_sec >= 725846400 + 100 ? 0 : 1;
  });
  SpawnOptions options;
  options.body = [](ProcessContext& ctx) {
    int code = 0;
    if (ctx.Spawn("/bin/timecheck", {"timecheck"}, &code) != 0) {
      return 10;
    }
    return WExitStatus(code);
  };
  const int status = RunUnderAgents(kernel, {std::make_shared<PlusHundredAgent>()}, options);
  EXPECT_EQ(WExitStatus(status), 0);
}

}  // namespace
}  // namespace ia
