// Logical devices implemented entirely in user space (the userdev agent).
#include "tests/test_helpers.h"

#include "src/agents/userdev.h"

namespace ia {
namespace {

using test::FileContents;
using test::MakeWorld;
using test::RunBodyUnder;

std::shared_ptr<UserDevAgent> MakeDevAgent() {
  auto agent = std::make_shared<UserDevAgent>();
  agent->AddDevice("/dev/fortune", std::make_shared<FortuneDevice>(std::vector<std::string>{
                                       "first fortune\n", "second fortune\n"}));
  agent->AddDevice("/dev/counter", std::make_shared<CounterDevice>());
  return agent;
}

TEST(UserDev, FortuneCyclesPerOpen) {
  auto kernel = MakeWorld();
  const int status = RunBodyUnder(*kernel, {MakeDevAgent()}, [](ProcessContext& ctx) {
    std::string first;
    if (ctx.ReadWholeFile("/dev/fortune", &first) != 0 || first != "first fortune\n") {
      return 1;
    }
    std::string second;
    if (ctx.ReadWholeFile("/dev/fortune", &second) != 0 || second != "second fortune\n") {
      return 2;
    }
    std::string wrapped;
    if (ctx.ReadWholeFile("/dev/fortune", &wrapped) != 0 || wrapped != "first fortune\n") {
      return 3;
    }
    return 0;
  });
  EXPECT_EQ(WExitStatus(status), 0);
}

TEST(UserDev, CounterReadWriteIoctl) {
  auto kernel = MakeWorld();
  auto agent = MakeDevAgent();
  const int status = RunBodyUnder(*kernel, {agent}, [](ProcessContext& ctx) {
    int fd = ctx.Open("/dev/counter", kOWronly);
    if (fd < 0) {
      return 1;
    }
    ctx.WriteString(fd, "41");
    ctx.Close(fd);
    fd = ctx.Open("/dev/counter", kORdwr);
    int64_t value = 0;
    if (ctx.Ioctl(fd, CounterDevice::kIoctlIncrement, &value) != 0 || value != 42) {
      return 2;
    }
    char buf[32] = {};
    const int64_t n = ctx.Read(fd, buf, sizeof(buf));
    if (n <= 0 || std::string(buf, static_cast<size_t>(n)) != "42\n") {
      return 3;
    }
    if (ctx.Ioctl(fd, CounterDevice::kIoctlReset, nullptr) != 0) {
      return 4;
    }
    if (ctx.Ioctl(fd, 0xdead, nullptr) != -kENotty) {
      return 5;
    }
    return 0;
  });
  EXPECT_EQ(WExitStatus(status), 0);
}

TEST(UserDev, StatSynthesizesCharDevice) {
  auto kernel = MakeWorld();
  const int status = RunBodyUnder(*kernel, {MakeDevAgent()}, [](ProcessContext& ctx) {
    ia::Stat st;
    if (ctx.Stat("/dev/fortune", &st) != 0) {
      return 1;
    }
    if (!SIsChr(st.st_mode)) {
      return 2;
    }
    const int fd = ctx.Open("/dev/fortune", kORdonly);
    ia::Stat fst;
    if (ctx.Fstat(fd, &fst) != 0 || !SIsChr(fst.st_mode)) {
      return 3;
    }
    if (ctx.Unlink("/dev/fortune") != -kEPerm) {
      return 4;
    }
    return 0;
  });
  EXPECT_EQ(WExitStatus(status), 0);
  // The device never existed below the agent.
  EXPECT_EQ(FileContents(*kernel, "/dev/fortune"), "<missing>");
}

TEST(UserDev, UnmodifiedProgramsUseTheDevice) {
  auto kernel = MakeWorld();
  SpawnOptions options;
  options.path = "/bin/cat";
  options.argv = {"cat", "/dev/fortune"};
  const int status = RunUnderAgents(*kernel, {MakeDevAgent()}, options);
  EXPECT_EQ(WExitStatus(status), 0);
  EXPECT_EQ(kernel->console().transcript(), "first fortune\n");
}

TEST(UserDev, NonDevicePathsPassThrough) {
  auto kernel = MakeWorld();
  const int status = RunBodyUnder(*kernel, {MakeDevAgent()}, [](ProcessContext& ctx) {
    std::string motd;
    if (ctx.ReadWholeFile("/etc/motd", &motd) != 0 || motd.empty()) {
      return 1;
    }
    char buf[4];
    const int null_fd = ctx.Open("/dev/null", kORdonly);
    if (ctx.Read(null_fd, buf, 4) != 0) {
      return 2;  // real /dev/null still behaves
    }
    return 0;
  });
  EXPECT_EQ(WExitStatus(status), 0);
}

TEST(UserDev, SharedDeviceStateAcrossClients) {
  auto kernel = MakeWorld();
  auto agent = MakeDevAgent();
  // Client 1 sets the counter; client 2 observes it — the device lives in the
  // shared agent, not in either process (Figure 1-4 shared state).
  RunBodyUnder(*kernel, {agent}, [](ProcessContext& ctx) {
    const int fd = ctx.Open("/dev/counter", kOWronly);
    ctx.WriteString(fd, "777");
    return 0;
  });
  const int status = RunBodyUnder(*kernel, {agent}, [](ProcessContext& ctx) {
    std::string value;
    ctx.ReadWholeFile("/dev/counter", &value);
    return value == "777\n" ? 0 : 1;
  });
  EXPECT_EQ(WExitStatus(status), 0);
}

}  // namespace
}  // namespace ia
