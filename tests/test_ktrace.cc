// In-kernel tracing hooks (the monolithic DFSTrace stand-in).
#include "tests/test_helpers.h"

#include "src/kernel/ktrace.h"

namespace ia {
namespace {

using test::ExitCodeOf;
using test::MakeWorld;

TEST(Ktrace, FileReferenceClassifier) {
  EXPECT_TRUE(IsFileReferenceSyscall(kSysOpen));
  EXPECT_TRUE(IsFileReferenceSyscall(kSysStat));
  EXPECT_TRUE(IsFileReferenceSyscall(kSysUnlink));
  EXPECT_TRUE(IsFileReferenceSyscall(kSysExecve));
  EXPECT_FALSE(IsFileReferenceSyscall(kSysGetpid));
  EXPECT_FALSE(IsFileReferenceSyscall(kSysRead));
  EXPECT_FALSE(IsFileReferenceSyscall(kSysSigblock));
}

TEST(Ktrace, RecordsPathsAndResults) {
  auto kernel = MakeWorld();
  VectorKtraceSink sink;
  kernel->SetKtrace(&sink);
  ExitCodeOf(*kernel, [](ProcessContext& ctx) {
    ctx.WriteWholeFile("/tmp/traced", "x");
    ctx.Open("/absent", kORdonly);
    ctx.Unlink("/tmp/traced");
    return 0;
  });
  kernel->SetKtrace(nullptr);

  bool saw_open_ok = false;
  bool saw_open_fail = false;
  bool saw_unlink = false;
  for (const KtraceRecord& record : sink.records()) {
    if (record.syscall == kSysOpen && record.path == "/tmp/traced" && record.result >= 0) {
      saw_open_ok = true;
    }
    if (record.syscall == kSysOpen && record.path == "/absent" &&
        record.result == -kENoent) {
      saw_open_fail = true;
    }
    if (record.syscall == kSysUnlink && record.path == "/tmp/traced") {
      saw_unlink = true;
    }
    EXPECT_GT(record.pid, 0);
    EXPECT_GT(record.vtime_usec, 0);
  }
  EXPECT_TRUE(saw_open_ok);
  EXPECT_TRUE(saw_open_fail);
  EXPECT_TRUE(saw_unlink);
}

TEST(Ktrace, DescriptorCallsRecordFd) {
  auto kernel = MakeWorld();
  VectorKtraceSink sink;
  kernel->SetKtrace(&sink);
  ExitCodeOf(*kernel, [](ProcessContext& ctx) {
    const int fd = ctx.Open("/etc/motd", kORdonly);
    ia::Stat st;
    ctx.Fstat(fd, &st);
    ctx.Close(fd);
    return 0;
  });
  kernel->SetKtrace(nullptr);
  bool saw_fstat_fd = false;
  for (const KtraceRecord& record : sink.records()) {
    if (record.syscall == kSysFstat && record.fd >= 3) {
      saw_fstat_fd = true;
    }
  }
  EXPECT_TRUE(saw_fstat_fd);
}

TEST(Ktrace, DisabledByDefaultAndDetachable) {
  auto kernel = MakeWorld();
  VectorKtraceSink sink;
  ExitCodeOf(*kernel, [](ProcessContext& ctx) {
    ctx.Open("/etc/motd", kORdonly);
    return 0;
  });
  EXPECT_TRUE(sink.records().empty());
  kernel->SetKtrace(&sink);
  kernel->SetKtrace(nullptr);
  ExitCodeOf(*kernel, [](ProcessContext& ctx) {
    ctx.Open("/etc/motd", kORdonly);
    return 0;
  });
  EXPECT_TRUE(sink.records().empty());
}

TEST(Ktrace, CapturesWholeProcessTrees) {
  auto kernel = MakeWorld();
  VectorKtraceSink sink;
  kernel->SetKtrace(&sink);
  SpawnOptions options;
  options.path = "/bin/sh";
  options.argv = {"sh", "-c", "echo hi > /tmp/out; cat /tmp/out"};
  const Pid pid = kernel->Spawn(options);
  kernel->HostWaitPid(pid);
  kernel->SetKtrace(nullptr);
  std::set<Pid> pids;
  for (const KtraceRecord& record : sink.records()) {
    pids.insert(record.pid);
  }
  // sh + at least the echo/cat children were all traced by the kernel hook.
  EXPECT_GE(pids.size(), 3u);
}

TEST(Ktrace, LifecycleSlotSeesExactlyProcessRows) {
  // A second sink slot filtered on kProcess yields the fork/exec/exit
  // lifecycle slice: every record is a kProcess row, and the fork+exec
  // workload's lifecycle events are all present.
  auto kernel = MakeWorld();
  VectorKtraceSink lifecycle;
  kernel->SetKtraceSlot(1, &lifecycle, kProcess);
  ExitCodeOf(*kernel, [](ProcessContext& ctx) {
    ctx.WriteWholeFile("/tmp/noise", "x");  // file-reference noise, not lifecycle
    const Pid child = ctx.Fork([](ProcessContext& c) {
      return c.Execve("/bin/true", {"true"});
    });
    if (child <= 0) {
      return 1;
    }
    int status = 0;
    ctx.Wait4(child, &status, 0, nullptr);
    return 0;
  });
  kernel->SetKtraceSlot(1, nullptr, 0);

  int forks = 0;
  int execs = 0;
  int exits = 0;
  for (const KtraceRecord& record : lifecycle.records()) {
    EXPECT_NE(SyscallSpecOf(record.syscall).flags & kProcess, 0u)
        << "non-process row in lifecycle slice: " << record.syscall;
    if (record.syscall == kSysFork || record.syscall == kSysVfork) {
      ++forks;
    }
    if (record.syscall == kSysExecve || record.syscall == kSysExecv) {
      ++execs;
      EXPECT_EQ(record.path, "/bin/true");  // execve carries kTakesPath
    }
    if (record.syscall == kSysExit) {
      ++exits;
    }
  }
  EXPECT_GE(forks, 1);
  EXPECT_GE(execs, 1);
  EXPECT_GE(exits, 2);  // child and the body process
}

TEST(Ktrace, TwoSlotsSliceIndependently) {
  // File-reference and lifecycle sinks attached simultaneously: each sees its
  // own class, and rows in both classes (fork/exec/exit carry kFileRef too)
  // land in both slices.
  auto kernel = MakeWorld();
  VectorKtraceSink fileref;
  VectorKtraceSink lifecycle;
  kernel->SetKtrace(&fileref);  // slot 0, kFileRef — the historical API
  kernel->SetKtraceSlot(1, &lifecycle, kProcess);
  ExitCodeOf(*kernel, [](ProcessContext& ctx) {
    ctx.WriteWholeFile("/tmp/both", "x");
    const Pid child = ctx.Fork([](ProcessContext&) { return 0; });
    int status = 0;
    ctx.Wait4(child, &status, 0, nullptr);
    return 0;
  });
  kernel->SetKtrace(nullptr);
  kernel->SetKtraceSlot(1, nullptr, 0);

  bool fileref_saw_open = false;
  bool fileref_saw_wait = false;
  for (const KtraceRecord& record : fileref.records()) {
    fileref_saw_open |= record.syscall == kSysOpen && record.path == "/tmp/both";
    fileref_saw_wait |= record.syscall == kSysWait4;
  }
  EXPECT_TRUE(fileref_saw_open);
  EXPECT_FALSE(fileref_saw_wait);  // wait4 is kProcess but not kFileRef

  bool lifecycle_saw_fork = false;
  bool lifecycle_saw_open = false;
  for (const KtraceRecord& record : lifecycle.records()) {
    lifecycle_saw_fork |= record.syscall == kSysFork;
    lifecycle_saw_open |= record.syscall == kSysOpen;
  }
  EXPECT_TRUE(lifecycle_saw_fork);
  EXPECT_FALSE(lifecycle_saw_open);  // open is kFileRef but not kProcess
}

TEST(Ktrace, RingSinkKeepsNewestAndCountsDrops) {
  RingKtraceSink sink(4);
  for (int i = 0; i < 10; ++i) {
    KtraceRecord record;
    record.syscall = i;
    sink.Record(record);
  }
  EXPECT_EQ(sink.capacity(), 4u);
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.total_recorded(), 10u);
  EXPECT_EQ(sink.dropped(), 6u);
  const std::vector<KtraceRecord> kept = sink.Snapshot();
  ASSERT_EQ(kept.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(kept[i].syscall, 6 + i);  // oldest-first, newest four retained
  }
}

TEST(Ktrace, RingSinkUnderCapacityDropsNothing) {
  RingKtraceSink sink(8);
  for (int i = 0; i < 5; ++i) {
    KtraceRecord record;
    record.syscall = i;
    sink.Record(record);
  }
  EXPECT_EQ(sink.size(), 5u);
  EXPECT_EQ(sink.dropped(), 0u);
  const std::vector<KtraceRecord> kept = sink.Snapshot();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(kept[i].syscall, i);
  }
  sink.Clear();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.total_recorded(), 0u);
}

TEST(Ktrace, RingSinkBoundsLongWorkloads) {
  // A long syscall-heavy run fills the ring but memory stays bounded at
  // `capacity` records, with the overflow counted — the kernel-buffer
  // behaviour the paper describes for DFSTrace.
  auto kernel = MakeWorld();
  RingKtraceSink sink(16);
  kernel->SetKtrace(&sink);
  ExitCodeOf(*kernel, [](ProcessContext& ctx) {
    Stat st;
    for (int i = 0; i < 200; ++i) {
      ctx.Stat("/etc/motd", &st);
    }
    return 0;
  });
  EXPECT_EQ(sink.size(), 16u);
  EXPECT_GE(sink.total_recorded(), 200u);
  EXPECT_EQ(sink.dropped(), sink.total_recorded() - 16u);
}

}  // namespace
}  // namespace ia
