// The syscall specification table (src/kernel/syscalls.def) is the single
// source of truth for the system interface. These tests pin its completeness:
// every kSys* constant in types.h has a named row, every implemented row has a
// kernel dispatch handler and a symbolic-layer decode arm, name lookups round
// trip, and the kernel's per-syscall counters observe real traffic.
#include "tests/test_helpers.h"

#include <cstdio>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>

#include "src/agents/monitor.h"
#include "src/kernel/syscall_table.h"
#include "src/toolkit/toolkit.h"

namespace ia {
namespace {

using test::FileContents;
using test::MakeWorld;
using test::RunBody;
using test::RunBodyUnder;

bool IsGapName(std::string_view name) { return !name.empty() && name[0] == '#'; }

// Every kSys* enumerator in types.h must have a named row in syscalls.def —
// an interface constant the table does not know about is a hole in the single
// source of truth. The enum is parsed from the source tree at test time.
TEST(SyscallTable, EveryTypesHConstantHasNamedRow) {
  std::ifstream in(std::string(IA_SOURCE_DIR) + "/src/kernel/types.h");
  ASSERT_TRUE(in.good()) << "cannot open types.h under IA_SOURCE_DIR";
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  const std::regex constant_re(R"((kSys\w+)\s*=\s*(\d+))");
  int constants_seen = 0;
  for (auto it = std::sregex_iterator(text.begin(), text.end(), constant_re);
       it != std::sregex_iterator(); ++it) {
    const std::string constant = (*it)[1];
    const int number = std::stoi((*it)[2]);
    ++constants_seen;
    EXPECT_FALSE(IsGapName(SyscallName(number)))
        << constant << " (" << number << ") has no named row in syscalls.def";
  }
  // The 4.3BSD subset in types.h is substantial; a tiny count means the regex
  // rotted, not that the interface shrank.
  EXPECT_GT(constants_seen, 100);
}

TEST(SyscallTable, NameLookupsRoundTrip) {
  EXPECT_EQ(SyscallName(kSysOpen), "open");
  EXPECT_EQ(SyscallName(kSysGetdirentries), "getdirentries");
  EXPECT_EQ(SyscallNumberByName("open"), kSysOpen);
  EXPECT_EQ(SyscallNumberByName("wait4"), kSysWait4);
  EXPECT_EQ(SyscallNumberByName("nonesuch"), -1);
  EXPECT_EQ(SyscallName(-1), "#?");
  EXPECT_EQ(SyscallName(kMaxSyscall + 100), "#?");

  for (int number = 0; number < kMaxSyscall; ++number) {
    const std::string_view name = SyscallName(number);
    if (IsGapName(name)) {
      EXPECT_EQ(SyscallNumberByName(name), -1) << number;
    } else {
      EXPECT_EQ(SyscallNumberByName(name), number) << name;
    }
  }
}

TEST(SyscallTable, SpecsCarryArgMetadata) {
  const SyscallSpec& open_spec = SyscallSpecOf(kSysOpen);
  EXPECT_EQ(open_spec.nargs, 3);
  EXPECT_EQ(open_spec.args[0], ArgKind::kPath);
  EXPECT_EQ(open_spec.path_arg, 0);
  EXPECT_NE(open_spec.flags & kTakesPath, 0u);
  EXPECT_NE(open_spec.flags & kFileRef, 0u);
  EXPECT_EQ(open_spec.default_cost_usec, 900);

  const SyscallSpec& mknod_spec = SyscallSpecOf(kSysMknod);
  EXPECT_EQ(mknod_spec.nargs, 3);
  EXPECT_EQ(mknod_spec.args[2], ArgKind::kDev);

  const SyscallSpec& close_spec = SyscallSpecOf(kSysClose);
  EXPECT_NE(close_spec.flags & kTakesFd, 0u);
  EXPECT_EQ(close_spec.default_cost_usec, 60);

  // Alias rows are implemented rows tagged kAlias; unimplemented rows are
  // named but not implemented; gap numbers have neither.
  EXPECT_NE(SyscallSpecOf(kSysVfork).flags & kAlias, 0u);
  EXPECT_NE(SyscallSpecOf(kSysVfork).flags & kImplemented, 0u);
  EXPECT_EQ(SyscallSpecOf(kSysSendmsg).flags & kImplemented, 0u);
  EXPECT_FALSE(IsGapName(SyscallName(kSysSendmsg)));

  // The AF_UNIX rows decode sockaddr arguments and belong to the socket
  // interest class; the rendezvous rows stay non-blocking while the transfer
  // rows (and accept) can sleep.
  const SyscallSpec& bind_spec = SyscallSpecOf(kSysBind);
  EXPECT_NE(bind_spec.flags & kImplemented, 0u);
  EXPECT_NE(bind_spec.flags & kSocket, 0u);
  EXPECT_EQ(bind_spec.args[1], ArgKind::kCSockAddrPtr);
  EXPECT_EQ(bind_spec.flags & kBlocking, 0u);
  const SyscallSpec& accept_spec = SyscallSpecOf(kSysAccept);
  EXPECT_NE(accept_spec.flags & kBlocking, 0u);
  EXPECT_EQ(accept_spec.args[1], ArgKind::kSockAddrPtr);
  const SyscallSpec& recvfrom_spec = SyscallSpecOf(kSysRecvfrom);
  EXPECT_EQ(recvfrom_spec.nargs, 6);
  EXPECT_EQ(recvfrom_spec.args[1], ArgKind::kBufOut);
  EXPECT_EQ(recvfrom_spec.args[4], ArgKind::kSockAddrPtr);
}

// The kernel dispatch table and the kImplemented flag must agree for every
// number: a row claiming implementation without a handler would silently
// ENOSYS, and a handler without a row would be unreachable metadata.
// Agent interest sets are now derived from the abstraction-class flags, so a
// flag that disagrees with the row's argument kinds silently mis-routes every
// footprint-narrowed agent. Pin the agreement: a first decoded Path argument
// implies kTakesPath, an Fd in slot 0 implies kTakesFd, and the lock-free
// per-process lane is disjoint from the pathname class (a path row touches
// shared VFS state by definition).
TEST(SyscallTable, FlagsAgreeWithArgKinds) {
  for (int n = 0; n < kMaxSyscall; ++n) {
    const SyscallSpec& spec = SyscallSpecOf(n);
    if (spec.number < 0) {
      continue;
    }
    // First Path-kind argument anywhere in the signature => kTakesPath.
    for (int i = 0; i < spec.nargs; ++i) {
      if (spec.args[static_cast<size_t>(i)] == ArgKind::kPath) {
        EXPECT_NE(spec.flags & kTakesPath, 0u)
            << spec.name << " decodes a Path argument but lacks kTakesPath";
        break;
      }
    }
    if (spec.nargs > 0 && spec.args[0] == ArgKind::kFd) {
      EXPECT_NE(spec.flags & kTakesFd, 0u)
          << spec.name << " takes an fd in slot 0 but lacks kTakesFd";
    }
    if ((spec.flags & kTakesPath) != 0) {
      EXPECT_EQ(spec.flags & kPerProcess, 0u)
          << spec.name << " cannot be both kTakesPath and kPerProcess";
      // Unimplemented rows carry classification flags but no decode metadata,
      // so the path_arg requirement applies to implemented rows only.
      if ((spec.flags & kImplemented) != 0) {
        EXPECT_GE(spec.path_arg, 0)
            << spec.name << " is kTakesPath but records no path_arg";
      }
    }
    // Socket rows: decoding a sockaddr anywhere implies membership in the
    // kSocket interest class, and every kSocket row stays off the lock-free
    // lanes — they all touch the shared rendezvous/peer state, so a
    // kPerProcess or kVfsRead socket row would race the big-lock handlers.
    bool has_sockaddr = false;
    for (int i = 0; i < spec.nargs; ++i) {
      const ArgKind kind = spec.args[static_cast<size_t>(i)];
      if (kind == ArgKind::kSockAddrPtr || kind == ArgKind::kCSockAddrPtr) {
        has_sockaddr = true;
        break;
      }
    }
    if (has_sockaddr) {
      EXPECT_NE(spec.flags & kSocket, 0u)
          << spec.name << " decodes a sockaddr argument but lacks kSocket";
    }
    if ((spec.flags & kSocket) != 0) {
      EXPECT_EQ(spec.flags & (kPerProcess | kVfsRead), 0u)
          << spec.name << " is kSocket but claims a lock-free dispatch lane";
      // Socket addresses travel as sockaddr structs, never Path arguments, so
      // pathname-footprint agents don't accidentally claim socket rows.
      EXPECT_EQ(spec.flags & kTakesPath, 0u)
          << spec.name << " is kSocket but claims kTakesPath";
    }
  }
}

// Alias rows answer for their target's method and handler, so the flags that
// drive footprints and trace filters must match the abstractions the target
// actually has: execv must be file-reference like execve, vfork like fork.
TEST(SyscallTable, AliasRowsShareAbstractionFlags) {
  const uint32_t kAbstraction = kTakesPath | kTakesFd | kFileRef;
  const struct {
    int alias;
    int target;
  } pairs[] = {
      {kSysExecv, kSysExecve},
      {kSysVfork, kSysFork},
      {kSysWait, kSysWait4},
      {kSysSigaction, kSysSigvec},
  };
  for (const auto& pair : pairs) {
    const SyscallSpec& alias = SyscallSpecOf(pair.alias);
    const SyscallSpec& target = SyscallSpecOf(pair.target);
    EXPECT_NE(alias.flags & kAlias, 0u) << alias.name;
    EXPECT_EQ(alias.flags & kAbstraction, target.flags & kAbstraction)
        << alias.name << " and " << target.name
        << " disagree on abstraction-class flags";
  }
}

TEST(SyscallTable, KernelDispatchMatchesImplementedFlag) {
  for (int number = -2; number < kMaxSyscall + 2; ++number) {
    const bool implemented = (SyscallSpecOf(number).flags & kImplemented) != 0;
    EXPECT_EQ(Kernel::ImplementsSyscall(number), implemented) << SyscallName(number);
  }
}

// kBlocking drives EINTR fault injection, so it must mark exactly the rows
// whose handlers can actually sleep: a kBlocking row that is not implemented
// (or whose handler never blocks, like flock) would make the injector claim
// interruptions no real 4.3BSD caller could see.
TEST(SyscallTable, BlockingRowsAreImplementedAndGenuinelyInterruptible) {
  std::set<std::string> blocking_names;
  for (int number = 0; number < kMaxSyscall; ++number) {
    const uint32_t flags = SyscallSpecOf(number).flags;
    if ((flags & kBlocking) == 0) {
      continue;
    }
    EXPECT_NE(flags & kImplemented, 0u)
        << SyscallName(number) << " is kBlocking but not implemented";
    blocking_names.insert(std::string(SyscallName(number)));
  }
  const std::set<std::string> expected = {"read",   "write", "readv",  "writev", "wait4",
                                          "sigpause", "wait", "accept", "send",   "recv",
                                          "sendto", "recvfrom"};
  EXPECT_EQ(blocking_names, expected);
}

TEST(SyscallTable, FormatSyscallUsesKindMetadata) {
  SyscallArgs args;
  args.SetPtr(0, "/etc/motd");
  args.SetInt(1, 0);
  args.SetInt(2, 0644);
  const std::string open_text = FormatSyscall(kSysOpen, args);
  EXPECT_NE(open_text.find("open(\"/etc/motd\""), std::string::npos) << open_text;
  EXPECT_NE(open_text.find("0644"), std::string::npos) << open_text;

  // Null path decodes safely; unimplemented numbers format as raw hex words.
  SyscallArgs zeros;
  EXPECT_EQ(FormatSyscall(kSysUnlink, zeros), "unlink(NULL)");
  EXPECT_EQ(FormatSyscall(kSysSendmsg, zeros), "sendmsg(0x0, 0x0, 0x0)");

  // Socket rows decode sockaddr arguments: const (input) addresses render
  // their AF_UNIX pathname, out-parameter addresses render as opaque.
  SockAddr sa{};
  sa.sun_family = kAfUnix;
  std::snprintf(sa.sun_path, sizeof(sa.sun_path), "/tmp/sock");
  SyscallArgs bind_args;
  bind_args.SetInt(0, 3);
  bind_args.SetPtr(1, &sa);
  bind_args.SetInt(2, static_cast<int>(sizeof(sa)));
  EXPECT_EQ(FormatSyscall(kSysBind, bind_args),
            "bind(3, {AF_UNIX \"/tmp/sock\"}, 106)");
  EXPECT_EQ(FormatSyscall(kSysSocket, zeros), "socket(0, 0, 0)");
}

// Records which numbers the symbolic decoder routed to a decoded method versus
// unknown_syscall, swallowing everything except exit (no kernel side effects).
class DecodeProbeAgent final : public SymbolicSyscall {
 public:
  std::string name() const override { return "decode_probe"; }

  std::set<int> decoded;
  std::set<int> unknown;

 protected:
  SyscallStatus sys_generic(AgentCall& call) override {
    decoded.insert(call.number());
    if (call.number() == kSysExit) {
      return call.CallDown();
    }
    return 0;
  }

  SyscallStatus unknown_syscall(AgentCall& call) override {
    unknown.insert(call.number());
    return 0;
  }
};

// Sweeps every syscall number through the symbolic layer and checks the decode
// boundary is exactly the kImplemented flag: implemented rows reach a decoded
// sys_* method (whose default funnels into sys_generic), everything else
// lands in unknown_syscall.
TEST(SyscallTable, SymbolicDecodeCoversExactlyImplementedRows) {
  auto kernel = MakeWorld();
  auto probe = std::make_shared<DecodeProbeAgent>();
  const int status = RunBodyUnder(*kernel, {probe}, [](ProcessContext& ctx) {
    for (int number = 0; number < kMaxSyscall; ++number) {
      if (number == kSysExit) {
        continue;  // covered by the harness's own exit when the body returns
      }
      SyscallArgs args;  // all zeros; the probe never forwards to the kernel
      SyscallResult rv;
      ctx.Syscall(number, args, &rv);
    }
    return 0;
  });
  ASSERT_TRUE(WifExited(status));
  ASSERT_EQ(WExitStatus(status), 0);

  for (int number = 0; number < kMaxSyscall; ++number) {
    const bool implemented = (SyscallSpecOf(number).flags & kImplemented) != 0;
    if (implemented) {
      EXPECT_TRUE(probe->decoded.count(number)) << "not decoded: " << SyscallName(number);
      EXPECT_FALSE(probe->unknown.count(number)) << SyscallName(number);
    } else {
      EXPECT_TRUE(probe->unknown.count(number)) << "not unknown: " << SyscallName(number);
      EXPECT_FALSE(probe->decoded.count(number)) << SyscallName(number);
    }
  }
}

TEST(SyscallTable, KernelSyscallStatsCountCallsErrorsAndVtime) {
  auto kernel = MakeWorld();
  const int status = RunBody(*kernel, [](ProcessContext& ctx) {
    for (int i = 0; i < 10; ++i) {
      ctx.Getpid();
    }
    // A guaranteed failure: opening a path that does not exist.
    SyscallArgs args;
    args.SetPtr(0, "/definitely/absent");
    args.SetInt(1, 0);
    SyscallResult rv;
    return ctx.Syscall(kSysOpen, args, &rv) == -kENoent ? 0 : 1;
  });
  ASSERT_TRUE(WifExited(status));
  ASSERT_EQ(WExitStatus(status), 0);

  const auto stats = kernel->SyscallStats();
  EXPECT_GE(stats[kSysGetpid].calls, 10);
  EXPECT_EQ(stats[kSysGetpid].errors, 0);
  // Each getpid costs 25 virtual µs (Table 3-5), so vtime must reflect it.
  EXPECT_GE(stats[kSysGetpid].vtime_usec, 10 * 25);
  EXPECT_GE(stats[kSysOpen].calls, 1);
  EXPECT_GE(stats[kSysOpen].errors, 1);
  // Numbers never issued stay at zero.
  EXPECT_EQ(stats[kSysMknod].calls, 0);
  EXPECT_EQ(stats[kSysSendmsg].calls, 0);
}

TEST(SyscallTable, MonitorAgentSurfacesKernelStats) {
  auto kernel = MakeWorld();
  // The client's first open lands on fd 3 (0-2 are stdio); the monitor writes
  // its exit report, including the kernel-side stats, to that descriptor.
  auto monitor = std::make_shared<MonitorAgent>(3);
  monitor->set_report_kernel_stats(true);
  const int status = RunBodyUnder(*kernel, {monitor}, [](ProcessContext& ctx) {
    if (ctx.Open("/tmp/report", kOWronly | kOCreat, 0644) != 3) {
      return 1;
    }
    ctx.Getpid();
    return 0;
  });
  ASSERT_TRUE(WifExited(status));
  ASSERT_EQ(WExitStatus(status), 0);

  const std::string report = FileContents(*kernel, "/tmp/report");
  EXPECT_NE(report.find("system call usage"), std::string::npos) << report;
  EXPECT_NE(report.find("kernel per-syscall stats"), std::string::npos) << report;
  EXPECT_NE(report.find("getpid"), std::string::npos) << report;
}

}  // namespace
}  // namespace ia
