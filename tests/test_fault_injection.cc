// The deterministic fault-injection plane: seed reproducibility, the
// exhaustion regimes, 4.3BSD short-write semantics at the disk budget, the
// retry agent's transparency over both the kernel injector and the chaos
// agent, and the FaultStats surfacing in MonitorAgent reports.
#include "tests/test_helpers.h"

#include <cstring>

#include "src/agents/chaos.h"
#include "src/agents/monitor.h"
#include "src/agents/retry.h"
#include "src/toolkit/toolkit.h"

namespace ia {
namespace {

using test::FileContents;
using test::MakeWorld;
using test::RunBody;
using test::RunBodyUnder;
using test::SnapshotFs;

// --- DecideFault is a pure function ----------------------------------------

TEST(FaultPlan, DecideFaultIsDeterministic) {
  FaultPlan plan;
  plan.seed = 42;
  plan.eintr_probability = 0.5;
  plan.short_probability = 0.5;
  plan.class_rules.push_back({kTakesPath, 0.5, kENoent});
  FaultEnv env;
  env.transfer_count = 100;
  for (int number = 0; number < kMaxSyscall; ++number) {
    for (uint64_t seq = 1; seq <= 20; ++seq) {
      const FaultDecision a = DecideFault(plan, 3, seq, number, env);
      const FaultDecision b = DecideFault(plan, 3, seq, number, env);
      ASSERT_EQ(a.action, b.action);
      ASSERT_EQ(a.errno_value, b.errno_value);
      ASSERT_EQ(a.clamp_len, b.clamp_len);
    }
  }
}

TEST(FaultPlan, EintrTargetsOnlyBlockingRowsAndExitIsExempt) {
  FaultPlan plan;
  plan.eintr_probability = 1.0;  // certain, wherever it is allowed at all
  for (int number = 0; number < kMaxSyscall; ++number) {
    const FaultDecision d = DecideFault(plan, 1, 1, number);
    const uint32_t flags = SyscallSpecOf(number).flags;
    const bool expect_eintr =
        (flags & kImplemented) != 0 && (flags & kBlocking) != 0 && number != kSysExit;
    EXPECT_EQ(d.action == FaultAction::kEintrReturn, expect_eintr) << SyscallName(number);
  }
  // The audited kBlocking set: exactly the rows whose handlers can sleep.
  EXPECT_NE(SyscallSpecOf(kSysRead).flags & kBlocking, 0u);
  EXPECT_NE(SyscallSpecOf(kSysWait4).flags & kBlocking, 0u);
  EXPECT_EQ(SyscallSpecOf(kSysFlock).flags & kBlocking, 0u);  // never sleeps
}

TEST(FaultPlan, ClassRulesFollowFlagMasks) {
  FaultPlan plan;
  plan.class_rules.push_back({kTakesPath, 1.0, kEAcces});
  for (int number : {kSysOpen, kSysStat, kSysUnlink, kSysMkdir}) {
    EXPECT_EQ(DecideFault(plan, 1, 1, number).action, FaultAction::kErrnoReturn)
        << SyscallName(number);
  }
  for (int number : {kSysGetpid, kSysClose, kSysDup}) {
    EXPECT_EQ(DecideFault(plan, 1, 1, number).action, FaultAction::kNone)
        << SyscallName(number);
  }
}

// --- seed reproducibility over a real workload ------------------------------

int ChurnBody(ProcessContext& ctx) {
  ctx.Mkdir("/tmp/churn", 0755);
  char buf[256];
  for (int i = 0; i < 120; ++i) {
    const std::string path = "/tmp/churn/f" + std::to_string(i % 4);
    const int fd = ctx.Open(path, kOWronly | kOCreat | kOAppend, 0644);
    if (fd >= 0) {
      ctx.Write(fd, "0123456789abcdef", 16);
      ctx.Close(fd);
    }
    ia::Stat st;
    ctx.Stat(path, &st);
    const int rfd = ctx.Open(path, kORdonly, 0);
    if (rfd >= 0) {
      while (ctx.Read(rfd, buf, sizeof buf) > 0) {
      }
      ctx.Close(rfd);
    }
  }
  return 0;
}

FaultPlan RichPlan(uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.record_trace = true;
  plan.eintr_probability = 0.2;
  plan.short_probability = 0.3;
  plan.class_rules.push_back({kTakesPath, 0.2, kENoent});
  return plan;
}

TEST(FaultInjection, SameSeedSamePlanGivesIdenticalTrace) {
  std::string traces[2];
  std::array<FaultStat, kMaxSyscall> stats[2];
  for (int run = 0; run < 2; ++run) {
    auto kernel = MakeWorld();
    kernel->SetFaultPlan(RichPlan(0xfeed));
    const int status = RunBody(*kernel, ChurnBody);
    ASSERT_TRUE(WifExited(status));
    traces[run] = kernel->FaultTraceText();
    stats[run] = kernel->FaultStats();
  }
  EXPECT_FALSE(traces[0].empty());
  EXPECT_EQ(traces[0], traces[1]);
  for (int number = 0; number < kMaxSyscall; ++number) {
    const auto i = static_cast<size_t>(number);
    ASSERT_EQ(stats[0][i].injected_errno, stats[1][i].injected_errno) << SyscallName(number);
    ASSERT_EQ(stats[0][i].injected_eintr, stats[1][i].injected_eintr) << SyscallName(number);
    ASSERT_EQ(stats[0][i].short_transfers, stats[1][i].short_transfers) << SyscallName(number);
  }
}

TEST(FaultInjection, DifferentSeedsDiverge) {
  std::string traces[2];
  const uint64_t seeds[2] = {0x1111, 0x2222};
  for (int run = 0; run < 2; ++run) {
    auto kernel = MakeWorld();
    kernel->SetFaultPlan(RichPlan(seeds[run]));
    const int status = RunBody(*kernel, ChurnBody);
    ASSERT_TRUE(WifExited(status));
    traces[run] = kernel->FaultTraceText();
  }
  EXPECT_NE(traces[0], traces[1]);
}

// --- exhaustion regimes ------------------------------------------------------

TEST(FaultInjection, EmfileRecoversAfterClose) {
  auto kernel = MakeWorld();
  FaultPlan plan;
  plan.fd_table_limit = 5;  // stdio takes 0-2, so two more opens fit
  kernel->SetFaultPlan(plan);
  const int code = test::ExitCodeOf(*kernel, [](ProcessContext& ctx) {
    const int a = ctx.Open("/tmp/a", kOWronly | kOCreat, 0644);
    const int b = ctx.Open("/tmp/b", kOWronly | kOCreat, 0644);
    if (a < 0 || b < 0) {
      return 1;
    }
    if (ctx.Open("/tmp/c", kOWronly | kOCreat, 0644) != -kEMfile) {
      return 2;  // at the artificial ceiling: EMFILE, deterministically
    }
    if (ctx.Close(a) != 0) {
      return 3;
    }
    const int c = ctx.Open("/tmp/c", kOWronly | kOCreat, 0644);
    if (c < 0) {
      return 4;  // closing a descriptor must lift the pressure
    }
    ctx.Close(b);
    ctx.Close(c);
    return 0;
  });
  EXPECT_EQ(code, 0);
  EXPECT_GE(kernel->FaultStats()[kSysOpen].exhaustion, 1);
}

// The bugfix regression: a write that hits the disk budget mid-buffer returns
// bytes-written-so-far (4.3BSD short-write semantics), not an error; only the
// next write, which cannot make progress, fails with ENOSPC.
TEST(FaultInjection, DiskBudgetShortWriteThenEnospc) {
  auto kernel = MakeWorld();
  FaultPlan plan;
  plan.disk_budget_bytes = kernel->fs().total_bytes() + 100;
  kernel->SetFaultPlan(plan);
  const int code = test::ExitCodeOf(*kernel, [](ProcessContext& ctx) {
    const int fd = ctx.Open("/tmp/full", kOWronly | kOCreat, 0644);
    if (fd < 0) {
      return 1;
    }
    char block[256] = {};
    for (char& c : block) {
      c = 'x';
    }
    const int64_t n = ctx.Write(fd, block, sizeof block);
    if (n != 100) {
      return 2;  // the prefix that fit, not an error and not the full count
    }
    if (ctx.Write(fd, block, sizeof block) != -kENospc) {
      return 3;  // no budget left at all: now it is an error
    }
    if (ctx.Truncate("/tmp/full", 0) != 0 || ctx.Lseek(fd, 0, kSeekSet) != 0) {
      return 4;
    }
    if (ctx.Write(fd, block, 50) != 50) {
      return 5;  // freeing space lifts the regime
    }
    ctx.Close(fd);
    return 0;
  });
  EXPECT_EQ(code, 0);
  EXPECT_EQ(static_cast<int64_t>(FileContents(*kernel, "/tmp/full").size()), 50);
  const auto stats = kernel->FaultStats();
  EXPECT_GE(stats[kSysWrite].short_transfers, 1);
  EXPECT_GE(stats[kSysWrite].exhaustion, 1);
}

// Growth past the per-file ceiling fails with EFBIG instead of dying inside
// an absurd resize (found by the hostile-ABI fuzz).
TEST(FaultInjection, FileSizeCeilingIsEfbig) {
  auto kernel = MakeWorld();
  const int code = test::ExitCodeOf(*kernel, [](ProcessContext& ctx) {
    if (ctx.Truncate("/etc/motd", kMaxFileBytes + 1) != -kEFbig) {
      return 1;
    }
    const int fd = ctx.Open("/tmp/big", kOWronly | kOCreat, 0644);
    if (fd < 0) {
      return 2;
    }
    if (ctx.Ftruncate(fd, kMaxFileBytes + 1) != -kEFbig) {
      return 3;
    }
    if (ctx.Lseek(fd, kMaxFileBytes, kSeekSet) != kMaxFileBytes) {
      return 4;
    }
    char byte = 'x';
    if (ctx.Write(fd, &byte, 1) != -kEFbig) {
      return 5;  // at the ceiling no progress is possible
    }
    ctx.Close(fd);
    return 0;
  });
  EXPECT_EQ(code, 0);
}

// --- retry transparency ------------------------------------------------------

// An unmodified workload under retry must produce a filesystem byte-identical
// to the fault-free run, whichever plane injects the faults.
std::map<std::string, std::string> RunChurnAndSnapshot(bool kernel_faults, bool chaos_faults,
                                                       bool with_retry) {
  auto kernel = MakeWorld();
  if (kernel_faults) {
    FaultPlan plan;
    plan.seed = 0xabcd;
    plan.eintr_probability = 0.3;
    plan.short_probability = 0.4;
    plan.enfile_probability = 0.1;
    kernel->SetFaultPlan(plan);
  }
  std::vector<AgentRef> agents;
  if (chaos_faults) {
    FaultPlan plan;
    plan.seed = 0x7777;
    plan.eintr_probability = 0.25;
    plan.short_probability = 0.4;
    agents.push_back(std::make_shared<ChaosAgent>(plan));  // closest to kernel
  }
  auto retry = std::make_shared<RetryAgent>();
  if (with_retry) {
    agents.push_back(retry);  // above chaos, closest to the application
  }
  const int status = agents.empty() ? RunBody(*kernel, ChurnBody)
                                    : RunBodyUnder(*kernel, agents, ChurnBody);
  EXPECT_TRUE(WifExited(status));
  EXPECT_EQ(WExitStatus(status), 0);
  if (with_retry && (kernel_faults || chaos_faults)) {
    EXPECT_GT(retry->EintrRetries() + retry->ShortResumes() + retry->TransientRetries(), 0);
  }
  return SnapshotFs(*kernel);
}

TEST(FaultInjection, RetryMasksKernelFaults) {
  const auto baseline = RunChurnAndSnapshot(false, false, false);
  const auto faulted = RunChurnAndSnapshot(true, false, true);
  EXPECT_EQ(baseline, faulted);
}

TEST(FaultInjection, RetryMasksChaosAgentFaults) {
  const auto baseline = RunChurnAndSnapshot(false, false, false);
  const auto faulted = RunChurnAndSnapshot(false, true, true);
  EXPECT_EQ(baseline, faulted);
}

TEST(FaultInjection, RetryMasksBothPlanesComposed) {
  const auto baseline = RunChurnAndSnapshot(false, false, false);
  const auto faulted = RunChurnAndSnapshot(true, true, true);
  EXPECT_EQ(baseline, faulted);
}

TEST(FaultInjection, RetryGivesUpUnderHundredPercentEintr) {
  // retry∘chaos under a 100%-rate EINTR plan must degrade to a bounded
  // failure, not a livelock: the per-class cap exhausts, GiveUps() counts the
  // surrender, and the last real errno propagates to the application.
  auto kernel = MakeWorld();
  FaultPlan plan;
  plan.seed = 0x5150;
  plan.eintr_probability = 1.0;
  RetryPolicy policy;
  policy.max_attempts_eintr = 4;
  auto retry = std::make_shared<RetryAgent>(policy);
  const int status = RunBodyUnder(
      *kernel, {std::make_shared<ChaosAgent>(plan), retry}, [](ProcessContext& ctx) {
        ctx.WriteWholeFile("/tmp/victim", "payload");
        const int fd = ctx.Open("/tmp/victim", kORdonly);
        if (fd < 0) {
          return 1;
        }
        char buf[32];
        // Every attempt (and every retry) draws EINTR; retry must hand the
        // errno back instead of spinning forever.
        return ctx.Read(fd, buf, sizeof buf) == -kEIntr ? 0 : 2;
      });
  EXPECT_TRUE(WifExited(status));
  EXPECT_EQ(WExitStatus(status), 0);
  EXPECT_GT(retry->GiveUps(), 0);
  EXPECT_GT(retry->EintrRetries(), 0);
}

TEST(FaultInjection, RetryPerClassCapsAreIndependent) {
  // A zero EINTR cap disables those retries outright while the transient cap
  // still inherits max_attempts — the classes budget separately.
  auto kernel = MakeWorld();
  FaultPlan plan;
  plan.seed = 0x5151;
  plan.eintr_probability = 1.0;
  RetryPolicy policy;
  policy.max_attempts_eintr = 1;  // one attempt, no retries
  auto retry = std::make_shared<RetryAgent>(policy);
  const int status = RunBodyUnder(
      *kernel, {std::make_shared<ChaosAgent>(plan), retry}, [](ProcessContext& ctx) {
        ctx.WriteWholeFile("/tmp/victim", "payload");
        const int fd = ctx.Open("/tmp/victim", kORdonly);
        if (fd < 0) {
          return 1;
        }
        char buf[32];
        return ctx.Read(fd, buf, sizeof buf) == -kEIntr ? 0 : 2;
      });
  EXPECT_TRUE(WifExited(status));
  EXPECT_EQ(WExitStatus(status), 0);
  EXPECT_EQ(retry->EintrRetries(), 0);
  EXPECT_GT(retry->GiveUps(), 0);
}

// --- surfacing ---------------------------------------------------------------

TEST(FaultInjection, MonitorReportSurfacesInjectedCounts) {
  auto kernel = MakeWorld();
  FaultPlan plan;
  plan.number_rules.push_back({kSysStat, 1.0, kEIo});
  kernel->SetFaultPlan(plan);
  auto monitor = std::make_shared<MonitorAgent>(3);
  monitor->set_report_kernel_stats(true);
  const int status = RunBodyUnder(*kernel, {monitor}, [](ProcessContext& ctx) {
    if (ctx.Open("/tmp/report", kOWronly | kOCreat, 0644) != 3) {
      return 1;
    }
    ia::Stat st;
    return ctx.Stat("/etc/motd", &st) == -kEIo ? 0 : 2;
  });
  ASSERT_TRUE(WifExited(status));
  ASSERT_EQ(WExitStatus(status), 0);

  EXPECT_GE(kernel->FaultStats()[kSysStat].injected_errno, 1);
  const std::string report = FileContents(*kernel, "/tmp/report");
  EXPECT_NE(report.find("injected faults"), std::string::npos) << report;
  EXPECT_NE(report.find("stat"), std::string::npos) << report;
}

TEST(FaultInjection, DownApiInstallsAndClearsPlans) {
  auto kernel = MakeWorld();
  const int code = test::ExitCodeOf(*kernel, [](ProcessContext& ctx) {
    DownApi api(ctx, -1);
    FaultPlan plan;
    plan.number_rules.push_back({kSysAccess, 1.0, kEPerm});
    api.InstallFaultPlan(plan);
    if (ctx.Access("/etc/motd", 0) != -kEPerm) {
      return 1;
    }
    if (api.KernelFaultStats()[kSysAccess].injected_errno < 1) {
      return 2;
    }
    api.ClearFaultPlan();
    if (ctx.Access("/etc/motd", 0) != 0) {
      return 3;
    }
    return 0;
  });
  EXPECT_EQ(code, 0);
}

// --- short transfers across iovec boundaries ---------------------------------

// Fills three iovecs over `storage` (60 + 100 + 140 bytes).
int BuildIovecs(char* storage, IoVec* iov) {
  const int64_t lens[3] = {60, 100, 140};
  int64_t off = 0;
  for (int i = 0; i < 3; ++i) {
    iov[i].iov_base = storage + off;
    iov[i].iov_len = lens[i];
    off += lens[i];
  }
  return 3;
}

std::string Pattern(size_t n) {
  std::string s(n, '\0');
  for (size_t i = 0; i < n; ++i) {
    s[i] = static_cast<char>('a' + i % 26);
  }
  return s;
}

TEST(FaultInjection, ReadvShortTransferReturnsExactPrefixAndOffset) {
  // With short_probability=1 every readv is clamped mid-vector. The returned
  // prefix must be byte-exact across the iovec boundary, bytes past rv must
  // be untouched, and the file offset must have advanced by exactly rv so a
  // follow-up readv resumes where the short one stopped.
  auto kernel = MakeWorld();
  FaultPlan plan;
  plan.seed = 0xbeef;
  plan.short_probability = 1.0;
  kernel->SetFaultPlan(plan);
  const std::string pattern = Pattern(300);
  const int code = test::ExitCodeOf(*kernel, [&pattern](ProcessContext& ctx) {
    ctx.WriteWholeFile("/tmp/vec", pattern);
    const int fd = ctx.Open("/tmp/vec", kORdonly);
    if (fd < 0) {
      return 1;
    }
    char storage[300];
    std::memset(storage, '.', sizeof(storage));
    IoVec iov[3];
    const int iovcnt = BuildIovecs(storage, iov);
    const int64_t rv = ctx.Readv(fd, iov, iovcnt);
    if (rv <= 0 || rv >= 300) {
      return 2;  // must be a genuine short transfer
    }
    for (int64_t i = 0; i < 300; ++i) {
      const char want = i < rv ? pattern[static_cast<size_t>(i)] : '.';
      if (storage[i] != want) {
        return 3;
      }
    }
    if (ctx.Lseek(fd, 0, kSeekCur) != rv) {
      return 4;  // offset advanced by exactly the bytes transferred
    }
    // The remainder is still there: resume with a plain read (scalar reads
    // with count tracked as one byte of slack are shortened too, so just
    // check the first resumed byte lines up).
    char next = 0;
    if (ctx.Read(fd, &next, 1) != 1 || next != pattern[static_cast<size_t>(rv)]) {
      return 5;
    }
    ctx.Close(fd);
    return 0;
  });
  EXPECT_EQ(code, 0);
  EXPECT_GE(kernel->FaultStats()[kSysReadv].short_transfers, 1);
}

TEST(FaultInjection, WritevShortTransferLeavesConsistentPrefix) {
  auto kernel = MakeWorld();
  FaultPlan plan;
  plan.seed = 0xd00d;
  plan.short_probability = 1.0;
  kernel->SetFaultPlan(plan);
  const std::string pattern = Pattern(300);
  int64_t rv = 0;
  const int code = test::ExitCodeOf(*kernel, [&pattern, &rv](ProcessContext& ctx) {
    const int fd = ctx.Open("/tmp/vecw", kOWronly | kOCreat, 0644);
    if (fd < 0) {
      return 1;
    }
    char storage[300];
    std::memcpy(storage, pattern.data(), sizeof(storage));
    IoVec iov[3];
    const int iovcnt = BuildIovecs(storage, iov);
    rv = ctx.Writev(fd, iov, iovcnt);
    if (rv <= 0 || rv >= 300) {
      return 2;
    }
    if (ctx.Lseek(fd, 0, kSeekCur) != rv) {
      return 3;
    }
    ctx.Close(fd);
    return 0;
  });
  EXPECT_EQ(code, 0);
  // The file holds exactly the written prefix — nothing torn past rv.
  const std::string contents = FileContents(*kernel, "/tmp/vecw");
  EXPECT_EQ(contents.size(), static_cast<size_t>(rv));
  EXPECT_EQ(contents, pattern.substr(0, static_cast<size_t>(rv)));
  EXPECT_GE(kernel->FaultStats()[kSysWritev].short_transfers, 1);
}

TEST(FaultInjection, RetryAgentResumesShortVectorTransfers) {
  // Under the retry agent a vector call must come back whole: the agent
  // decomposes it into per-segment scalar reads/writes and resumes each one
  // until the full count lands, masking every injected short transfer.
  auto kernel = MakeWorld();
  FaultPlan plan;
  plan.seed = 0x5151;
  plan.short_probability = 1.0;
  kernel->SetFaultPlan(plan);
  auto retry = std::make_shared<RetryAgent>();
  const std::string pattern = Pattern(300);
  const int status = RunBodyUnder(*kernel, {retry}, [&pattern](ProcessContext& ctx) {
    // writev side: the full 300 bytes must land despite per-call clamps.
    int fd = ctx.Open("/tmp/vecr", kOWronly | kOCreat, 0644);
    if (fd < 0) {
      return 1;
    }
    char wstorage[300];
    std::memcpy(wstorage, pattern.data(), sizeof(wstorage));
    IoVec wiov[3];
    if (ctx.Writev(fd, wiov, BuildIovecs(wstorage, wiov)) != 300) {
      return 2;
    }
    ctx.Close(fd);
    // readv side: the whole file comes back in one resumed vector call.
    fd = ctx.Open("/tmp/vecr", kORdonly);
    if (fd < 0) {
      return 3;
    }
    char rstorage[300];
    std::memset(rstorage, 0, sizeof(rstorage));
    IoVec riov[3];
    if (ctx.Readv(fd, riov, BuildIovecs(rstorage, riov)) != 300) {
      return 4;
    }
    if (std::memcmp(rstorage, pattern.data(), sizeof(rstorage)) != 0) {
      return 5;
    }
    ctx.Close(fd);
    return 0;
  });
  ASSERT_TRUE(WifExited(status));
  EXPECT_EQ(WExitStatus(status), 0);
  EXPECT_GT(retry->ShortResumes(), 0);
  EXPECT_EQ(FileContents(*kernel, "/tmp/vecr"), pattern);
}

}  // namespace
}  // namespace ia
