// Integration tests: paper workloads running under the paper's agents.
#include <gtest/gtest.h>

#include "src/agents/dfs_trace.h"
#include "src/agents/emul.h"
#include "src/agents/filter_fs.h"
#include "src/agents/monitor.h"
#include "src/agents/sandbox.h"
#include "src/agents/timex.h"
#include "src/agents/trace.h"
#include "src/agents/txn.h"
#include "src/agents/union_fs.h"
#include "src/apps/apps.h"

namespace ia {
namespace {

std::unique_ptr<Kernel> MakeWorld() {
  auto kernel = std::make_unique<Kernel>();
  InstallStandardPrograms(*kernel);
  return kernel;
}

int RunProgram(Kernel& kernel, const std::string& prog_path,
               const std::vector<std::string>& argv, const std::string& cwd = "/") {
  SpawnOptions options;
  options.path = prog_path;
  options.argv = argv;
  options.cwd = cwd;
  const Pid pid = kernel.Spawn(options);
  EXPECT_GT(pid, 0) << prog_path;
  return kernel.HostWaitPid(pid);
}

int RunProgramUnder(Kernel& kernel, const std::vector<AgentRef>& agents,
                    const std::string& prog_path, const std::vector<std::string>& argv,
                    const std::string& cwd = "/") {
  SpawnOptions options;
  options.path = prog_path;
  options.argv = argv;
  options.cwd = cwd;
  return RunUnderAgents(kernel, agents, options);
}

std::string FileContents(Kernel& kernel, const std::string& file_path) {
  Cred root;
  NameiEnv env{kernel.fs().root(), kernel.fs().root(), &root};
  NameiResult nr;
  if (kernel.fs().Namei(env, file_path, NameiOp::kLookup, true, &nr) != 0 ||
      nr.inode == nullptr) {
    return "<missing>";
  }
  return nr.inode->data;
}

// --- workloads without agents -------------------------------------------------

TEST(Workloads, ScribeFormatsDissertation) {
  auto kernel = MakeWorld();
  SetupScribeWorkload(*kernel);
  const int status = RunProgram(*kernel, "/usr/bin/scribe",
                                {"scribe", "dissertation.mss"}, "/home/mbj");
  ASSERT_TRUE(WifExited(status));
  EXPECT_EQ(WExitStatus(status), 0);
  const std::string doc = FileContents(*kernel, "/home/mbj/dissertation.doc");
  EXPECT_GT(doc.size(), 1000u);
  EXPECT_NE(doc.find("Chapter 3"), std::string::npos);
  const std::string aux = FileContents(*kernel, "/home/mbj/dissertation.aux");
  EXPECT_NE(aux.find("Section 1.1"), std::string::npos);
}

TEST(Workloads, MakeBuildsEightPrograms) {
  auto kernel = MakeWorld();
  const std::string dir = SetupMakeWorkload(*kernel, 8);
  const int64_t before = kernel->TotalSyscallCount();
  const int status = RunProgram(*kernel, "/bin/make", {"make"}, dir);
  ASSERT_TRUE(WifExited(status));
  EXPECT_EQ(WExitStatus(status), 0);
  for (int i = 1; i <= 8; ++i) {
    const std::string exe = FileContents(*kernel, dir + "/prog" + std::to_string(i));
    EXPECT_EQ(exe.substr(0, 4), "EXE1") << i;
  }
  // A syscall-heavy multi-process task (paper: tens of thousands of calls).
  EXPECT_GT(kernel->TotalSyscallCount() - before, 500);
  // Second run: everything is up to date, nothing rebuilds.
  const int status2 = RunProgram(*kernel, "/bin/make", {"make"}, dir);
  EXPECT_EQ(WExitStatus(status2), 0);
  EXPECT_NE(kernel->console().transcript().find("built 0 target(s)"), std::string::npos);
}

TEST(Workloads, AndrewBenchmarkRuns) {
  auto kernel = MakeWorld();
  SetupAndrewTree(*kernel, "/usr/andrew", /*files=*/5, /*subdirs=*/2);
  const int status =
      RunProgram(*kernel, "/usr/bin/andrew", {"andrew", "/usr/andrew", "/tmp/andrew"});
  ASSERT_TRUE(WifExited(status));
  EXPECT_EQ(WExitStatus(status), 0);
  const std::string log = FileContents(*kernel, "/tmp/andrew/MAKELOG");
  EXPECT_NE(log.find("files=10"), std::string::npos) << log;
}

TEST(Workloads, ShellPipelineAndRedirection) {
  auto kernel = MakeWorld();
  kernel->fs().InstallFile("/tmp/words.txt", "alpha\nbeta\ngamma\nalpha beta\n");
  const int status = RunProgram(
      *kernel, "/bin/sh",
      {"sh", "-c", "grep alpha /tmp/words.txt | wc /dev/null > /tmp/out.txt"});
  ASSERT_TRUE(WifExited(status));
  EXPECT_EQ(WExitStatus(status), 0);
  // And a script with cd + redirection.
  kernel->fs().InstallFile("/tmp/script.sh",
                           "#!/bin/sh\ncd /tmp\necho hello > greeting\ncat greeting\n", 0755);
  const int status2 = RunProgram(*kernel, "/tmp/script.sh", {"script.sh"});
  EXPECT_EQ(WExitStatus(status2), 0);
  EXPECT_EQ(FileContents(*kernel, "/tmp/greeting"), "hello\n");
}

// --- the paper's agents over the workloads ------------------------------------

TEST(AgentRuns, TimexShiftsTimeForDate) {
  auto kernel = MakeWorld();
  const int status = RunProgramUnder(
      *kernel, {std::make_shared<TimexAgent>(3600)}, "/bin/date", {"date"});
  EXPECT_EQ(WExitStatus(status), 0);
  const std::string out = kernel->console().transcript();
  const int64_t reported = std::atoll(out.c_str());
  const int64_t real = kernel->clock().Now() / 1000000;
  EXPECT_GE(reported, real + 3590);
  EXPECT_LE(reported, real + 3610);
}

TEST(AgentRuns, TraceCapturesMakeActivity) {
  auto kernel = MakeWorld();
  const std::string dir = SetupMakeWorkload(*kernel, 2);
  auto trace = std::make_shared<TraceAgent>(TraceOptions{.log_path = "/tmp/trace.log"});
  const int status = RunProgramUnder(*kernel, {trace}, "/bin/make", {"make"}, dir);
  ASSERT_TRUE(WifExited(status));
  EXPECT_EQ(WExitStatus(status), 0);
  const std::string log = FileContents(*kernel, "/tmp/trace.log");
  EXPECT_NE(log.find("fork()"), std::string::npos);
  EXPECT_NE(log.find("execve("), std::string::npos);
  EXPECT_NE(log.find("open("), std::string::npos);
  EXPECT_GT(trace->traced_calls(), 100);
}

TEST(AgentRuns, UnionMergesSourceAndObjectDirs) {
  auto kernel = MakeWorld();
  kernel->fs().InstallFile("/src/main.c", "int main(){}\n");
  kernel->fs().InstallFile("/src/util.c", "void util(){}\n");
  kernel->fs().InstallFile("/obj/main.o", "OBJ1\n");
  kernel->fs().InstallFile("/obj/util.o", "OBJ1\n");
  kernel->fs().InstallFile("/src/README", "sources\n");

  auto agent = std::make_shared<UnionAgent>(
      std::vector<UnionMount>{{"/build", {"/src", "/obj"}}});
  const int status = RunProgramUnder(*kernel, {agent}, "/bin/ls", {"ls", "/build"});
  ASSERT_TRUE(WifExited(status));
  EXPECT_EQ(WExitStatus(status), 0);
  const std::string out = kernel->console().transcript();
  EXPECT_NE(out.find("main.c"), std::string::npos) << out;
  EXPECT_NE(out.find("main.o"), std::string::npos) << out;
  EXPECT_NE(out.find("README"), std::string::npos) << out;
}

TEST(AgentRuns, UnionReadsThroughToMembers) {
  auto kernel = MakeWorld();
  kernel->fs().InstallFile("/v1/shadowed.txt", "from v1\n");
  kernel->fs().InstallFile("/v2/shadowed.txt", "from v2\n");
  kernel->fs().InstallFile("/v2/only2.txt", "only in v2\n");
  auto agent = std::make_shared<UnionAgent>(
      std::vector<UnionMount>{{"/u", {"/v1", "/v2"}}});
  const int status = RunProgramUnder(*kernel, {agent}, "/bin/cat",
                                     {"cat", "/u/shadowed.txt", "/u/only2.txt"});
  EXPECT_EQ(WExitStatus(status), 0);
  EXPECT_EQ(kernel->console().transcript(), "from v1\nonly in v2\n");
}

TEST(AgentRuns, DfsTraceRecordsFileReferences) {
  auto kernel = MakeWorld();
  SetupAndrewTree(*kernel, "/usr/andrew", 3, 2);
  auto agent = std::make_shared<DfsTraceAgent>("/tmp/dfs.log");
  const int status = RunProgramUnder(*kernel, {agent}, "/usr/bin/andrew",
                                     {"andrew", "/usr/andrew", "/tmp/andrew"});
  ASSERT_TRUE(WifExited(status));
  EXPECT_EQ(WExitStatus(status), 0);
  EXPECT_GT(agent->count(DfsOpcode::kNameRef), 20);
  EXPECT_GT(agent->count(DfsOpcode::kOpen), 10);
  const std::vector<DfsDecodedRecord> records =
      DecodeDfsTraceLog(FileContents(*kernel, "/tmp/dfs.log"));
  ASSERT_GT(records.size(), 50u);
  bool saw_makelog = false;
  for (const DfsDecodedRecord& record : records) {
    if (record.payload.find("MAKELOG") != std::string::npos) {
      saw_makelog = true;
    }
  }
  EXPECT_TRUE(saw_makelog);
}

TEST(AgentRuns, MonitorCountsSyscalls) {
  auto kernel = MakeWorld();
  SetupScribeWorkload(*kernel);
  auto monitor = std::make_shared<MonitorAgent>();
  const int status = RunProgramUnder(*kernel, {monitor}, "/usr/bin/scribe",
                                     {"scribe", "dissertation.mss"}, "/home/mbj");
  EXPECT_EQ(WExitStatus(status), 0);
  EXPECT_GT(monitor->CountOf(kSysWrite), 10);
  EXPECT_GT(monitor->CountOf(kSysOpen), 5);
  EXPECT_GT(monitor->TotalCalls(), 100);
  EXPECT_NE(monitor->FormatReport().find("write"), std::string::npos);
}

TEST(AgentRuns, SandboxDeniesAndEmulates) {
  auto kernel = MakeWorld();
  kernel->fs().InstallFile("/etc/secret", "s3cr3t\n", 0644);

  SandboxPolicy policy;
  policy.read_prefixes = {"/bin", "/usr", "/dev", "/tmp"};
  policy.write_prefixes = {"/tmp/jail"};
  policy.emulate_denied_writes = true;
  auto sandbox = std::make_shared<SandboxAgent>(policy);

  SpawnOptions options;
  options.body = [](ProcessContext& ctx) {
    // Disallowed read.
    if (ctx.Open("/etc/secret", kORdonly) != -kEPerm) {
      return 1;
    }
    // Allowed write.
    ctx.Mkdir("/tmp/jail", 0755);
    if (ctx.WriteWholeFile("/tmp/jail/ok.txt", "fine") != 0) {
      return 2;
    }
    // Denied write is emulated: appears to succeed, goes nowhere.
    const int fd = ctx.Open("/etc/evil", kOWronly | kOCreat, 0644);
    if (fd < 0) {
      return 3;
    }
    if (ctx.WriteString(fd, "malware") != 0) {
      return 4;
    }
    ctx.Close(fd);
    ia::Stat st;
    if (ctx.Stat("/etc/evil", &st) != -kEPerm && ctx.Stat("/etc/evil", &st) != -kENoent) {
      return 5;  // it must not actually exist (stat is denied or absent)
    }
    return 0;
  };
  const int status = RunUnderAgents(*kernel, {sandbox}, options);
  EXPECT_EQ(WExitStatus(status), 0);
  EXPECT_GT(sandbox->violations(), 0);
  EXPECT_EQ(FileContents(*kernel, "/etc/evil"), "<missing>");
}

TEST(AgentRuns, SandboxSyscallBudgetKills) {
  auto kernel = MakeWorld();
  SandboxPolicy policy;
  policy.max_syscalls = 50;
  auto sandbox = std::make_shared<SandboxAgent>(policy);
  SpawnOptions options;
  options.body = [](ProcessContext& ctx) {
    for (int i = 0; i < 10000; ++i) {
      ctx.Getpid();
    }
    return 0;
  };
  const int status = RunUnderAgents(*kernel, {sandbox}, options);
  EXPECT_TRUE(WifSignaled(status));
  EXPECT_EQ(WTermSig(status), kSigKill);
}

TEST(AgentRuns, TxnCommitAndAbort) {
  auto kernel = MakeWorld();
  kernel->fs().InstallFile("/data/config.txt", "version=1\n");
  kernel->fs().InstallFile("/data/doomed.txt", "delete me\n");

  // Abort: nothing persists.
  {
    auto txn = std::make_shared<TxnAgent>("/data", "/tmp/.txn1");
    SpawnOptions options;
    options.body = [&txn](ProcessContext& ctx) {
      ctx.WriteWholeFile("/data/config.txt", "version=2\n");
      ctx.Unlink("/data/doomed.txt");
      ctx.WriteWholeFile("/data/new.txt", "fresh\n");
      std::string view;
      ctx.ReadWholeFile("/data/config.txt", &view);
      if (view != "version=2\n") {
        return 1;  // inside the txn the write must be visible
      }
      ia::Stat st;
      if (ctx.Stat("/data/doomed.txt", &st) != -kENoent) {
        return 2;  // inside the txn the delete must be visible
      }
      txn->Abort(ctx);
      return 0;
    };
    const int status = RunUnderAgents(*kernel, {txn}, options);
    EXPECT_EQ(WExitStatus(status), 0);
    EXPECT_EQ(FileContents(*kernel, "/data/config.txt"), "version=1\n");
    EXPECT_EQ(FileContents(*kernel, "/data/doomed.txt"), "delete me\n");
    EXPECT_EQ(FileContents(*kernel, "/data/new.txt"), "<missing>");
  }

  // Commit: everything persists.
  {
    auto txn = std::make_shared<TxnAgent>("/data", "/tmp/.txn2");
    SpawnOptions options;
    options.body = [&txn](ProcessContext& ctx) {
      ctx.WriteWholeFile("/data/config.txt", "version=3\n");
      ctx.Unlink("/data/doomed.txt");
      ctx.WriteWholeFile("/data/new.txt", "fresh\n");
      txn->Commit(ctx);
      return 0;
    };
    const int status = RunUnderAgents(*kernel, {txn}, options);
    EXPECT_EQ(WExitStatus(status), 0);
    EXPECT_EQ(FileContents(*kernel, "/data/config.txt"), "version=3\n");
    EXPECT_EQ(FileContents(*kernel, "/data/doomed.txt"), "<missing>");
    EXPECT_EQ(FileContents(*kernel, "/data/new.txt"), "fresh\n");
  }
}

TEST(AgentRuns, NestedTransactions) {
  auto kernel = MakeWorld();
  kernel->fs().InstallFile("/data/x.txt", "base\n");
  auto outer = std::make_shared<TxnAgent>("/data", "/tmp/.outer");
  auto inner = std::make_shared<TxnAgent>("/data", "/tmp/.inner");
  SpawnOptions options;
  // agents[0] = outer (closest to kernel), agents[1] = inner (closest to app).
  options.body = [&outer, &inner](ProcessContext& ctx) {
    ctx.WriteWholeFile("/data/x.txt", "inner change\n");
    inner->Commit(ctx);  // commits into the OUTER transaction, not the base
    std::string view;
    ctx.ReadWholeFile("/data/x.txt", &view);
    if (view != "inner change\n") {
      return 1;
    }
    outer->Abort(ctx);  // discard everything
    return 0;
  };
  const int status = RunUnderAgents(*kernel, {outer, inner}, options);
  EXPECT_EQ(WExitStatus(status), 0);
  // The inner commit landed in the outer overlay, which was aborted.
  EXPECT_EQ(FileContents(*kernel, "/data/x.txt"), "base\n");
}

TEST(AgentRuns, CompressRoundTripAndStoredForm) {
  auto kernel = MakeWorld();
  kernel->fs().MkdirAll("/zip");
  auto agent = std::make_shared<CompressAgent>("/zip");
  SpawnOptions options;
  options.body = [](ProcessContext& ctx) {
    const std::string payload(4000, 'a');  // compresses well under RLE
    if (ctx.WriteWholeFile("/zip/runs.dat", payload) != 0) {
      return 1;
    }
    std::string back;
    if (ctx.ReadWholeFile("/zip/runs.dat", &back) != 0) {
      return 2;
    }
    if (back != payload) {
      return 3;
    }
    ia::Stat st;
    if (ctx.Stat("/zip/runs.dat", &st) != 0 || st.st_size != 4000) {
      return 4;  // logical size reported
    }
    return 0;
  };
  const int status = RunUnderAgents(*kernel, {agent}, options);
  EXPECT_EQ(WExitStatus(status), 0);
  // The stored bytes are the RLE form: magic + far fewer than 4000 bytes.
  const std::string stored = FileContents(*kernel, "/zip/runs.dat");
  EXPECT_EQ(stored.substr(0, 4), "RLE1");
  EXPECT_LT(stored.size(), 200u);
}

TEST(AgentRuns, CryptStoresCiphertext) {
  auto kernel = MakeWorld();
  kernel->fs().MkdirAll("/vault");
  auto agent = std::make_shared<CryptAgent>("/vault", /*key=*/0xfeedface);
  SpawnOptions options;
  options.body = [](ProcessContext& ctx) {
    if (ctx.WriteWholeFile("/vault/diary.txt", "attack at dawn") != 0) {
      return 1;
    }
    std::string back;
    if (ctx.ReadWholeFile("/vault/diary.txt", &back) != 0 || back != "attack at dawn") {
      return 2;
    }
    return 0;
  };
  const int status = RunUnderAgents(*kernel, {agent}, options);
  EXPECT_EQ(WExitStatus(status), 0);
  const std::string stored = FileContents(*kernel, "/vault/diary.txt");
  EXPECT_EQ(stored.substr(0, 4), "XOR1");
  EXPECT_EQ(stored.find("attack"), std::string::npos);
}

TEST(AgentRuns, HpuxEmulatorRunsForeignBinary) {
  auto kernel = MakeWorld();
  // Without the emulator, the foreign binary fails fast.
  const int bare = RunProgram(*kernel, "/usr/bin/hpux_hello", {"hpux_hello"});
  EXPECT_EQ(WExitStatus(bare), 10);
  // Under the emulator it runs to completion.
  auto emul = std::make_shared<HpuxEmulAgent>();
  const int status =
      RunProgramUnder(*kernel, {emul}, "/usr/bin/hpux_hello", {"hpux_hello"});
  EXPECT_EQ(WExitStatus(status), 0);
  EXPECT_GT(emul->emulated_calls(), 4);
  EXPECT_EQ(FileContents(*kernel, "/tmp/hpux.out"), "hello from an HP-UX binary\n");
}

TEST(AgentRuns, StackedAgentsTimexUnderTraceUnderUnion) {
  // Figure 1-3: multiple agents stacked between one application and the kernel.
  auto kernel = MakeWorld();
  kernel->fs().InstallFile("/v1/a.txt", "A\n");
  kernel->fs().InstallFile("/v2/b.txt", "B\n");
  auto timex = std::make_shared<TimexAgent>(1000);
  auto trace = std::make_shared<TraceAgent>(TraceOptions{.log_path = "/tmp/stack.log"});
  auto union_agent = std::make_shared<UnionAgent>(
      std::vector<UnionMount>{{"/u", {"/v1", "/v2"}}});
  const int status = RunProgramUnder(*kernel, {timex, trace, union_agent}, "/bin/cat",
                                     {"cat", "/u/a.txt", "/u/b.txt"});
  EXPECT_EQ(WExitStatus(status), 0);
  EXPECT_EQ(kernel->console().transcript(), "A\nB\n");
  EXPECT_GT(trace->traced_calls(), 0);
}

}  // namespace
}  // namespace ia
