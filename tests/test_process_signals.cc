// Process and signal machinery tests: fork inheritance, wait4 selectors,
// zombies, signal masks, EINTR, stop/continue, exec resets.
#include "tests/test_helpers.h"

namespace ia {
namespace {

using test::ExitCodeOf;
using test::FileContents;
using test::MakeWorld;
using test::RunBody;

TEST(Process, ForkInheritsStateButNotPending) {
  auto kernel = MakeWorld();
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              ctx.Chdir("/tmp");
              ctx.Umask(027);
              const int fd = ctx.Open("/etc/motd", kORdonly);
              const Pid parent_pid = ctx.Getpid();
              const Pid child = ctx.Fork([fd, parent_pid](ProcessContext& c) {
                if (c.Getppid() != parent_pid) {
                  return 1;
                }
                std::string wd;
                c.Getwd(&wd);
                if (wd != "/tmp") {
                  return 2;
                }
                if (c.Umask(022) != 027) {
                  return 3;  // umask inherited
                }
                char buf[4];
                if (c.Read(fd, buf, 4) != 4) {
                  return 4;  // descriptors inherited
                }
                return 0;
              });
              int status = 0;
              ctx.Wait4(child, &status, 0, nullptr);
              return WExitStatus(status);
            }),
            0);
}

TEST(Process, ForkSharesOpenFileOffsets) {
  auto kernel = MakeWorld();
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              ctx.WriteWholeFile("/tmp/shared", "abcdef");
              const int fd = ctx.Open("/tmp/shared", kORdonly);
              const Pid child = ctx.Fork([fd](ProcessContext& c) {
                char b;
                c.Read(fd, &b, 1);  // advances the SHARED offset
                return b == 'a' ? 0 : 1;
              });
              int status = 0;
              ctx.Wait4(child, &status, 0, nullptr);
              if (WExitStatus(status) != 0) {
                return 1;
              }
              char b;
              ctx.Read(fd, &b, 1);
              return b == 'b' ? 0 : 2;  // parent continues where the child left off
            }),
            0);
}

TEST(Process, WaitSelectorsAndEchild) {
  auto kernel = MakeWorld();
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              int status = 0;
              if (ctx.Wait4(-1, &status, 0, nullptr) != -kEChild) {
                return 1;  // no children yet
              }
              const Pid c1 = ctx.Fork([](ProcessContext&) { return 11; });
              const Pid c2 = ctx.Fork([](ProcessContext&) { return 22; });
              // Wait for the specific second child first.
              if (ctx.Wait4(c2, &status, 0, nullptr) != c2 || WExitStatus(status) != 22) {
                return 2;
              }
              if (ctx.Wait4(c1, &status, 0, nullptr) != c1 || WExitStatus(status) != 11) {
                return 3;
              }
              if (ctx.Wait4(-1, &status, 0, nullptr) != -kEChild) {
                return 4;
              }
              if (ctx.Wait4(c1, &status, 0, nullptr) != -kEChild) {
                return 5;  // already reaped
              }
              return 0;
            }),
            0);
}

TEST(Process, WaitNohang) {
  auto kernel = MakeWorld();
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              int pipe_fds[2];
              ctx.Pipe(pipe_fds);
              const Pid child = ctx.Fork([&pipe_fds](ProcessContext& c) {
                char b;
                c.Read(pipe_fds[0], &b, 1);  // blocks until parent writes
                return 0;
              });
              int status = 0;
              if (ctx.Wait4(child, &status, kWNoHang, nullptr) != 0) {
                return 1;  // child still alive -> 0, not blocking
              }
              ctx.WriteString(pipe_fds[1], "g");
              if (ctx.Wait4(child, &status, 0, nullptr) != child) {
                return 2;
              }
              return 0;
            }),
            0);
}

TEST(Process, OrphansReparentToHost) {
  auto kernel = MakeWorld();
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              const Pid child = ctx.Fork([](ProcessContext& c) {
                // Leave a grandchild running; we exit first.
                c.Fork([](ProcessContext& gc) {
                  gc.Compute(2000);
                  return 0;
                });
                return 0;
              });
              int status = 0;
              ctx.Wait4(child, &status, 0, nullptr);
              return 0;
            }),
            0);
  // HostWaitPid's orphan reaper cleans the grandchild up eventually.
  for (int i = 0; i < 100 && kernel->LiveProcessCount() > 0; ++i) {
    // The grandchild finishes on its own thread.
  }
  kernel->Shutdown();
  EXPECT_EQ(kernel->Pids().size(), 0u);
}

TEST(Process, RusageAggregatesChildren) {
  auto kernel = MakeWorld();
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              const Pid child = ctx.Fork([](ProcessContext& c) {
                for (int i = 0; i < 50; ++i) {
                  c.Getpid();
                }
                return 0;
              });
              Rusage child_usage;
              int status = 0;
              ctx.Wait4(child, &status, 0, &child_usage);
              if (child_usage.ru_nsyscalls < 50) {
                return 1;
              }
              Rusage aggregated;
              ctx.Getrusage(kRusageChildren, &aggregated);
              if (aggregated.ru_nsyscalls < 50) {
                return 2;
              }
              return 0;
            }),
            0);
}

TEST(Signals, MaskBlocksUntilUnblocked) {
  auto kernel = MakeWorld();
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              int delivered = 0;
              ctx.Sigvec(kSigUsr1, 2, [&delivered](ProcessContext&, int) { ++delivered; });
              ctx.Sigblock(SigMask(kSigUsr1));
              ctx.Kill(ctx.Getpid(), kSigUsr1);
              ctx.Getpid();  // a delivery point — but the signal is blocked
              if (delivered != 0) {
                return 1;
              }
              ctx.Sigsetmask(0);  // unblock; next boundary delivers
              ctx.Getpid();
              if (delivered != 1) {
                return 2;
              }
              return 0;
            }),
            0);
}

TEST(Signals, IgnoredSignalsAreDiscarded) {
  auto kernel = MakeWorld();
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              ctx.Sigvec(kSigUsr2, kSigIgn, nullptr);
              ctx.Kill(ctx.Getpid(), kSigUsr2);
              ctx.Getpid();
              return 0;  // survived: ignored, not terminated
            }),
            0);
}

TEST(Signals, DefaultTerminatesWithSignalStatus) {
  auto kernel = MakeWorld();
  const int status = RunBody(*kernel, [](ProcessContext& ctx) {
    ctx.Kill(ctx.Getpid(), kSigTerm);
    ctx.Getpid();  // delivery point
    return 0;      // unreachable
  });
  EXPECT_TRUE(WifSignaled(status));
  EXPECT_EQ(WTermSig(status), kSigTerm);
}

TEST(Signals, CannotCatchOrBlockKill) {
  auto kernel = MakeWorld();
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              if (ctx.Sigvec(kSigKill, 2, [](ProcessContext&, int) {}) != -kEInval) {
                return 1;
              }
              if (ctx.Sigvec(kSigStop, kSigIgn, nullptr) != -kEInval) {
                return 2;
              }
              const uint32_t old_mask = ctx.Sigblock(SigMask(kSigKill));
              (void)old_mask;
              // The mask must not actually contain SIGKILL.
              const uint32_t mask_now = ctx.Sigblock(0);
              if ((mask_now & SigMask(kSigKill)) != 0) {
                return 3;
              }
              return 0;
            }),
            0);
}

TEST(Signals, HandlerMaskAppliedDuringHandler) {
  auto kernel = MakeWorld();
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              int inner_delivered = 0;
              ctx.Sigvec(kSigUsr2, 2,
                         [&inner_delivered](ProcessContext&, int) { ++inner_delivered; });
              int outer_result = -1;
              ctx.Sigvec(
                  kSigUsr1, 2,
                  [&outer_result, &inner_delivered](ProcessContext& c, int) {
                    // USR2 is in the handler mask: posting it must not deliver here.
                    c.Kill(c.Getpid(), kSigUsr2);
                    c.Getpid();
                    outer_result = inner_delivered;
                  },
                  SigMask(kSigUsr2));
              ctx.Kill(ctx.Getpid(), kSigUsr1);
              ctx.Getpid();
              if (outer_result != 0) {
                return 1;  // USR2 leaked into the masked handler
              }
              ctx.Getpid();  // after the handler returned, USR2 delivers
              if (inner_delivered != 1) {
                return 2;
              }
              return 0;
            }),
            0);
}

TEST(Signals, EintrOnBlockedRead) {
  auto kernel = MakeWorld();
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              int pipe_fds[2];
              ctx.Pipe(pipe_fds);
              const Pid parent = ctx.Getpid();
              bool handled = false;
              ctx.Sigvec(kSigUsr1, 2, [&handled](ProcessContext&, int) { handled = true; });
              // The child signals until it is killed, so the parent is
              // guaranteed to be blocked in read() for at least one of them. A
              // bounded count is not enough: virtual-time pacing costs no real
              // time, so a slow parent thread (e.g. under TSan) can still be
              // short of read() when a finite barrage ends — the coalesced
              // pending bit is then consumed at a pre-read boundary and the
              // read blocks forever. The parent's SIGKILL ends the loop (kill
              // is a delivery point for the child's own pending signals).
              const Pid child = ctx.Fork([parent](ProcessContext& c) -> int {
                for (;;) {
                  c.Compute(200);
                  if (c.Kill(parent, kSigUsr1) < 0) {
                    break;
                  }
                }
                return 0;
              });
              char b;
              const int64_t n = ctx.Read(pipe_fds[0], &b, 1);  // blocks until signal
              ctx.Kill(child, kSigKill);
              int status = 0;
              while (ctx.Wait4(child, &status, 0, nullptr) == -kEIntr) {
              }
              if (n != -kEIntr) {
                return 1;
              }
              return handled ? 0 : 2;
            }),
            0);
}

TEST(Signals, SigpauseWaitsForSignal) {
  auto kernel = MakeWorld();
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              const Pid parent = ctx.Getpid();
              // Handler and mask in place BEFORE the child can signal.
              bool handled = false;
              ctx.Sigvec(kSigUsr1, 2, [&handled](ProcessContext&, int) { handled = true; });
              ctx.Sigblock(SigMask(kSigUsr1));
              // The child signals repeatedly: whenever sigpause opens the mask,
              // at least one USR1 gets through.
              const Pid child = ctx.Fork([parent](ProcessContext& c) -> int {
                for (int i = 0; i < 500; ++i) {
                  c.Compute(200);
                  if (c.Kill(parent, kSigUsr1) < 0) {
                    break;
                  }
                }
                return 0;
              });
              const int rc = ctx.Sigpause(0);  // atomically unblock + wait
              ctx.Kill(child, kSigKill);
              int status = 0;
              while (ctx.Wait4(child, &status, 0, nullptr) == -kEIntr) {
              }
              if (rc != -kEIntr) {
                return 1;
              }
              return handled ? 0 : 2;
            }),
            0);
}

TEST(Signals, StopAndContinue) {
  auto kernel = MakeWorld();
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              int pipe_fds[2];
              ctx.Pipe(pipe_fds);
              const Pid child = ctx.Fork([&pipe_fds](ProcessContext& c) {
                c.WriteString(pipe_fds[1], "A");  // before the stop
                c.Getpid();                       // delivery point: stops here
                c.WriteString(pipe_fds[1], "B");  // only after SIGCONT
                return 0;
              });
              char b;
              ctx.Read(pipe_fds[0], &b, 1);  // child reached "A"
              ctx.Kill(child, kSigStop);
              ctx.Compute(2000);  // give it time to stop at its next boundary
              ctx.Kill(child, kSigCont);
              const int64_t n = ctx.Read(pipe_fds[0], &b, 1);
              int status = 0;
              ctx.Wait4(child, &status, 0, nullptr);
              if (n != 1 || b != 'B') {
                return 1;
              }
              return WExitStatus(status) == 0 ? 0 : 2;
            }),
            0);
}

TEST(Signals, KillPermissionsAndErrors) {
  auto kernel = MakeWorld();
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              if (ctx.Kill(4242, kSigTerm) != -kESrch) {
                return 1;
              }
              if (ctx.Kill(ctx.Getpid(), 99) != -kEInval) {
                return 2;
              }
              if (ctx.Kill(ctx.Getpid(), 0) != 0) {
                return 3;  // existence probe
              }
              return 0;
            }),
            0);
}

TEST(Signals, KillProcessGroup) {
  auto kernel = MakeWorld();
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              // Two children placed into a fresh process group.
              const auto spin = [](ProcessContext& c) -> int {
                for (;;) {
                  c.Compute(100);
                }
              };
              const Pid c1 = ctx.Fork(spin);
              const Pid c2 = ctx.Fork(spin);
              ctx.Setpgrp(c1, c1);
              ctx.Setpgrp(c2, c1);
              if (ctx.Killpg(c1, kSigKill) != 0) {
                return 1;
              }
              int status = 0;
              int reaped = 0;
              while (ctx.Wait4(-1, &status, 0, nullptr) > 0) {
                if (WifSignaled(status) && WTermSig(status) == kSigKill) {
                  ++reaped;
                }
              }
              return reaped == 2 ? 0 : 2;
            }),
            0);
}

TEST(Exec, ResetsHandlersAndClosesCloexec) {
  auto kernel = MakeWorld();
  kernel->InstallProgram("/bin/checker", "checker", [](ProcessContext& ctx) {
    // fd 7 was close-on-exec in the parent image; it must be gone.
    char b;
    if (ctx.Read(7, &b, 1) != -kEBadf) {
      return 1;
    }
    // fd 8 was NOT close-on-exec; it must survive.
    if (ctx.Read(8, &b, 1) != 1) {
      return 2;
    }
    return 0;
  });
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              const Pid child = ctx.Fork([](ProcessContext& c) {
                const int fd7 = c.Open("/etc/motd", kORdonly);
                c.Dup2(fd7, 7);
                c.Close(fd7);
                c.Fcntl(7, kFSetfd, 1);  // close-on-exec
                const int fd8 = c.Open("/etc/motd", kORdonly);
                c.Dup2(fd8, 8);
                if (fd8 != 8) {
                  c.Close(fd8);
                }
                c.Sigvec(kSigUsr1, 2, [](ProcessContext&, int) {});
                c.Execve("/bin/checker", {"checker"});
                return 99;
              });
              int status = 0;
              ctx.Wait4(child, &status, 0, nullptr);
              return WExitStatus(status);
            }),
            0);
}

TEST(Exec, ErrnoCases) {
  auto kernel = MakeWorld();
  kernel->fs().InstallFile("/tmp/not_executable", "data", 0644);
  kernel->fs().InstallFile("/tmp/no_image", "plain file", 0755);
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              if (ctx.Execve("/absent", {"x"}) != -kENoent) {
                return 1;
              }
              if (ctx.Execve("/etc", {"x"}) != -kEIsdir) {
                return 2;
              }
              if (ctx.Execve("/tmp/not_executable", {"x"}) != -kEAcces) {
                return 3;
              }
              if (ctx.Execve("/tmp/no_image", {"x"}) != -kENoexec) {
                return 4;
              }
              return 0;
            }),
            0);
}

TEST(Exec, SetuidBitRaisesEffectiveUid) {
  auto kernel = MakeWorld();
  kernel->InstallProgram("/bin/whoami_eff", "whoami_eff",
                         [](ProcessContext& ctx) { return static_cast<int>(ctx.Geteuid()); });
  // Make it setuid-root.
  Cred root;
  NameiEnv env{kernel->fs().root(), kernel->fs().root(), &root};
  NameiResult nr;
  ASSERT_EQ(kernel->fs().Namei(env, "/bin/whoami_eff", NameiOp::kLookup, true, &nr), 0);
  nr.inode->mode_bits |= kSIsuid;
  nr.inode->uid = 0;

  SpawnOptions options;
  options.uid = 1000;
  options.gid = 1000;
  options.body = [](ProcessContext& ctx) {
    int status = 0;
    ctx.Spawn("/bin/whoami_eff", {"whoami_eff"}, &status);
    return WExitStatus(status);  // euid inside the setuid binary
  };
  const Pid pid = kernel->Spawn(options);
  EXPECT_EQ(WExitStatus(kernel->HostWaitPid(pid)), 0);  // ran as root
}

TEST(Exec, ShebangScriptsRun) {
  auto kernel = MakeWorld();
  kernel->fs().InstallFile("/tmp/hello.sh", "#!/bin/sh\necho scripted\n", 0755);
  SpawnOptions options;
  options.path = "/tmp/hello.sh";
  options.argv = {"hello.sh"};
  const Pid pid = kernel->Spawn(options);
  EXPECT_EQ(WExitStatus(kernel->HostWaitPid(pid)), 0);
  EXPECT_EQ(kernel->console().transcript(), "scripted\n");
}

TEST(Process, GetdtablesizeAndLimits) {
  auto kernel = MakeWorld();
  EXPECT_EQ(ExitCodeOf(*kernel, [](ProcessContext& ctx) {
              if (ctx.Getdtablesize() != kMaxFilesPerProcess) {
                return 1;
              }
              // Exhaust the descriptor table.
              int opened = 0;
              for (;;) {
                const int fd = ctx.Open("/etc/motd", kORdonly);
                if (fd < 0) {
                  if (fd != -kEMfile) {
                    return 2;
                  }
                  break;
                }
                ++opened;
              }
              return opened <= kMaxFilesPerProcess ? 0 : 3;
            }),
            0);
}

}  // namespace
}  // namespace ia
