// Unit tests for the VFS: namei semantics, permissions, links, rename, symlinks.
#include <gtest/gtest.h>

#include "src/kernel/vfs.h"

namespace ia {
namespace {

class VfsTest : public ::testing::Test {
 protected:
  VfsTest() : env_{fs_.root(), fs_.root(), &cred_} {}

  int Lookup(const std::string& p, InodeRef* out = nullptr, bool follow = true) {
    NameiResult nr;
    const int err = fs_.Namei(env_, p, NameiOp::kLookup, follow, &nr);
    if (out != nullptr) {
      *out = nr.inode;
    }
    return err;
  }

  int64_t FileSize(const std::string& p) {
    InodeRef inode;
    if (Lookup(p, &inode) != 0) {
      return -1;
    }
    return static_cast<int64_t>(inode->data.size());
  }

  Filesystem fs_;
  Cred cred_;
  NameiEnv env_;
};

TEST_F(VfsTest, RootProperties) {
  EXPECT_EQ(fs_.root()->ino(), 2u);
  EXPECT_TRUE(fs_.root()->IsDirectory());
  EXPECT_EQ(fs_.root()->nlink, 2);
  InodeRef inode;
  EXPECT_EQ(Lookup("/", &inode), 0);
  EXPECT_EQ(inode, fs_.root());
}

TEST_F(VfsTest, MkdirAllAndLookup) {
  ASSERT_NE(fs_.MkdirAll("/usr/local/bin"), nullptr);
  InodeRef inode;
  EXPECT_EQ(Lookup("/usr/local/bin", &inode), 0);
  EXPECT_TRUE(inode->IsDirectory());
  EXPECT_EQ(Lookup("/usr/local/missing"), -kENoent);
  EXPECT_EQ(Lookup("/usr/local/bin/deeper/x"), -kENoent);
}

TEST_F(VfsTest, InstallFileAndRead) {
  fs_.InstallFile("/etc/hosts", "localhost\n");
  InodeRef inode;
  ASSERT_EQ(Lookup("/etc/hosts", &inode), 0);
  EXPECT_TRUE(inode->IsRegular());
  EXPECT_EQ(inode->data, "localhost\n");
  EXPECT_EQ(inode->nlink, 1);
  // Reinstall replaces content, keeps identity.
  const Ino ino = inode->ino();
  fs_.InstallFile("/etc/hosts", "replaced");
  ASSERT_EQ(Lookup("/etc/hosts", &inode), 0);
  EXPECT_EQ(inode->data, "replaced");
  EXPECT_EQ(inode->ino(), ino);
}

TEST_F(VfsTest, DotAndDotDotResolution) {
  fs_.MkdirAll("/a/b");
  fs_.InstallFile("/a/f", "x");
  InodeRef via_dots;
  EXPECT_EQ(Lookup("/a/b/../f", &via_dots), 0);
  InodeRef direct;
  EXPECT_EQ(Lookup("/a/f", &direct), 0);
  EXPECT_EQ(via_dots, direct);
  // ".." above root stays at root.
  InodeRef rooty;
  EXPECT_EQ(Lookup("/../../a/f", &rooty), 0);
  EXPECT_EQ(rooty, direct);
  EXPECT_EQ(Lookup("/a/./b/./.", &via_dots), 0);
}

TEST_F(VfsTest, TrailingSlashRequiresDirectory) {
  fs_.InstallFile("/file", "x");
  fs_.MkdirAll("/dir");
  EXPECT_EQ(Lookup("/file/"), -kENotdir);
  EXPECT_EQ(Lookup("/dir/"), 0);
}

TEST_F(VfsTest, NonDirectoryComponentFails) {
  fs_.InstallFile("/file", "x");
  EXPECT_EQ(Lookup("/file/sub"), -kENotdir);
}

TEST_F(VfsTest, EmptyPathAndLongNames) {
  EXPECT_EQ(Lookup(""), -kENoent);
  EXPECT_EQ(Lookup("/" + std::string(kMaxNameLen + 1, 'n')), -kENametoolong);
  EXPECT_EQ(Lookup(std::string(kMaxPathLen + 10, 'p')), -kENametoolong);
}

TEST_F(VfsTest, SymlinkFollowAndNoFollow) {
  fs_.InstallFile("/target", "data");
  ASSERT_EQ(fs_.Symlink(env_, "/target", "/link"), 0);
  InodeRef followed;
  EXPECT_EQ(Lookup("/link", &followed), 0);
  EXPECT_TRUE(followed->IsRegular());
  InodeRef raw;
  EXPECT_EQ(Lookup("/link", &raw, /*follow=*/false), 0);
  EXPECT_TRUE(raw->IsSymlink());
  std::string target;
  EXPECT_EQ(fs_.Readlink(env_, "/link", &target), 0);
  EXPECT_EQ(target, "/target");
  EXPECT_EQ(fs_.Readlink(env_, "/target", &target), -kEInval);
}

TEST_F(VfsTest, RelativeSymlinkResolvesAgainstItsDirectory) {
  fs_.MkdirAll("/a/b");
  fs_.InstallFile("/a/real", "x");
  ASSERT_EQ(fs_.Symlink(env_, "../real", "/a/b/rel"), 0);
  InodeRef inode;
  EXPECT_EQ(Lookup("/a/b/rel", &inode), 0);
  EXPECT_EQ(inode->data, "x");
}

TEST_F(VfsTest, SymlinkLoopDetected) {
  ASSERT_EQ(fs_.Symlink(env_, "/loop2", "/loop1"), 0);
  ASSERT_EQ(fs_.Symlink(env_, "/loop1", "/loop2"), 0);
  EXPECT_EQ(Lookup("/loop1"), -kELoop);
}

TEST_F(VfsTest, SymlinkChainWithinLimitResolves) {
  fs_.InstallFile("/end", "x");
  std::string prev = "/end";
  for (int i = 0; i < kMaxSymlinkDepth; ++i) {
    const std::string link = "/chain" + std::to_string(i);
    ASSERT_EQ(fs_.Symlink(env_, prev, link), 0);
    prev = link;
  }
  EXPECT_EQ(Lookup(prev), 0);
  // One more exceeds the limit.
  ASSERT_EQ(fs_.Symlink(env_, prev, "/toomany"), 0);
  EXPECT_EQ(Lookup("/toomany"), -kELoop);
}

TEST_F(VfsTest, SymlinkInMiddleOfPath) {
  fs_.MkdirAll("/real/dir");
  fs_.InstallFile("/real/dir/f", "payload");
  ASSERT_EQ(fs_.Symlink(env_, "/real", "/alias"), 0);
  InodeRef inode;
  EXPECT_EQ(Lookup("/alias/dir/f", &inode), 0);
  EXPECT_EQ(inode->data, "payload");
  // Even with follow_final=false, mid-path symlinks are followed.
  EXPECT_EQ(Lookup("/alias/dir/f", &inode, /*follow=*/false), 0);
}

TEST_F(VfsTest, HardLinksShareInode) {
  fs_.InstallFile("/orig", "shared");
  ASSERT_EQ(fs_.Link(env_, "/orig", "/other"), 0);
  InodeRef a;
  InodeRef b;
  Lookup("/orig", &a);
  Lookup("/other", &b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a->nlink, 2);
  ASSERT_EQ(fs_.Unlink(env_, "/orig"), 0);
  EXPECT_EQ(Lookup("/orig"), -kENoent);
  EXPECT_EQ(Lookup("/other", &b), 0);
  EXPECT_EQ(b->nlink, 1);
  EXPECT_EQ(b->data, "shared");
}

TEST_F(VfsTest, LinkRestrictions) {
  fs_.MkdirAll("/dir");
  EXPECT_EQ(fs_.Link(env_, "/dir", "/dirlink"), -kEPerm);
  fs_.InstallFile("/f", "x");
  EXPECT_EQ(fs_.Link(env_, "/f", "/f"), -kEExist);
  EXPECT_EQ(fs_.Link(env_, "/nope", "/l"), -kENoent);
}

TEST_F(VfsTest, UnlinkSemantics) {
  fs_.MkdirAll("/dir");
  EXPECT_EQ(fs_.Unlink(env_, "/dir"), -kEPerm);  // directories need rmdir
  EXPECT_EQ(fs_.Unlink(env_, "/absent"), -kENoent);
  EXPECT_EQ(fs_.Unlink(env_, "/"), -kEInval);
}

TEST_F(VfsTest, RmdirSemantics) {
  fs_.MkdirAll("/d/sub");
  EXPECT_EQ(fs_.Rmdir(env_, "/d"), -kENotempty);
  EXPECT_EQ(fs_.Rmdir(env_, "/d/sub"), 0);
  EXPECT_EQ(fs_.Rmdir(env_, "/d"), 0);
  EXPECT_EQ(fs_.Rmdir(env_, "/"), -kEInval);
  fs_.InstallFile("/f", "x");
  EXPECT_EQ(fs_.Rmdir(env_, "/f"), -kENotdir);
}

TEST_F(VfsTest, RenameFile) {
  fs_.InstallFile("/from", "content");
  ASSERT_EQ(fs_.Rename(env_, "/from", "/to"), 0);
  EXPECT_EQ(Lookup("/from"), -kENoent);
  InodeRef inode;
  EXPECT_EQ(Lookup("/to", &inode), 0);
  EXPECT_EQ(inode->data, "content");
}

TEST_F(VfsTest, RenameReplacesExistingFile) {
  fs_.InstallFile("/a", "aaa");
  fs_.InstallFile("/b", "bbb");
  ASSERT_EQ(fs_.Rename(env_, "/a", "/b"), 0);
  InodeRef inode;
  EXPECT_EQ(Lookup("/b", &inode), 0);
  EXPECT_EQ(inode->data, "aaa");
}

TEST_F(VfsTest, RenameDirectoryUpdatesParent) {
  fs_.MkdirAll("/src/inner");
  fs_.MkdirAll("/dst");
  ASSERT_EQ(fs_.Rename(env_, "/src", "/dst/moved"), 0);
  InodeRef inner;
  EXPECT_EQ(Lookup("/dst/moved/inner", &inner), 0);
  // ".." must now point into /dst/moved's parent chain.
  InodeRef via_dots;
  EXPECT_EQ(Lookup("/dst/moved/inner/../..", &via_dots), 0);
  InodeRef dst;
  Lookup("/dst", &dst);
  EXPECT_EQ(via_dots, dst);
}

TEST_F(VfsTest, RenameIntoOwnSubtreeRejected) {
  fs_.MkdirAll("/top/mid");
  EXPECT_EQ(fs_.Rename(env_, "/top", "/top/mid/clone"), -kEInval);
}

TEST_F(VfsTest, RenameTypeMismatch) {
  fs_.MkdirAll("/d");
  fs_.InstallFile("/f", "x");
  EXPECT_EQ(fs_.Rename(env_, "/f", "/d"), -kEIsdir);
  EXPECT_EQ(fs_.Rename(env_, "/d", "/f"), -kENotdir);
  fs_.MkdirAll("/d2/kid");
  EXPECT_EQ(fs_.Rename(env_, "/d", "/d2"), -kENotempty);
}

TEST_F(VfsTest, RenameOntoSelfIsNoop) {
  fs_.InstallFile("/same", "x");
  EXPECT_EQ(fs_.Rename(env_, "/same", "/same"), 0);
  InodeRef inode;
  EXPECT_EQ(Lookup("/same", &inode), 0);
}

TEST_F(VfsTest, PermissionEnforcement) {
  fs_.MkdirAll("/secure", 0700);
  fs_.InstallFile("/secure/file", "top secret", 0600);
  fs_.InstallFile("/public", "hello", 0644);

  Cred alice;
  alice.ruid = alice.euid = 1000;
  alice.rgid = alice.egid = 1000;
  NameiEnv alice_env{fs_.root(), fs_.root(), &alice};

  NameiResult nr;
  EXPECT_EQ(fs_.Namei(alice_env, "/secure/file", NameiOp::kLookup, true, &nr), -kEAcces);
  EXPECT_EQ(fs_.Access(alice_env, "/public", kROk), 0);
  EXPECT_EQ(fs_.Access(alice_env, "/public", kWOk), -kEAcces);
  InodeRef out;
  EXPECT_EQ(fs_.Open(alice_env, "/public", kOWronly, 0, &out), -kEAcces);
  EXPECT_EQ(fs_.Open(alice_env, "/public", kORdonly, 0, &out), 0);
  // Root passes everything.
  EXPECT_EQ(fs_.Namei(env_, "/secure/file", NameiOp::kLookup, true, &nr), 0);
}

TEST_F(VfsTest, GroupPermissions) {
  fs_.InstallFile("/groupfile", "g", 0640);
  InodeRef inode;
  Lookup("/groupfile", &inode);
  inode->gid = 500;

  Cred member;
  member.ruid = member.euid = 1000;
  member.rgid = member.egid = 500;
  Cred outsider;
  outsider.ruid = outsider.euid = 1000;
  outsider.rgid = outsider.egid = 999;
  Cred supplementary;
  supplementary.ruid = supplementary.euid = 1000;
  supplementary.rgid = supplementary.egid = 999;
  supplementary.groups = {500};

  EXPECT_TRUE(CredPermits(member, inode->uid, inode->gid, inode->mode_bits, kROk));
  EXPECT_FALSE(CredPermits(outsider, inode->uid, inode->gid, inode->mode_bits, kROk));
  EXPECT_TRUE(CredPermits(supplementary, inode->uid, inode->gid, inode->mode_bits, kROk));
  EXPECT_FALSE(CredPermits(member, inode->uid, inode->gid, inode->mode_bits, kWOk));
}

TEST_F(VfsTest, OwnerBitsTrumpGroupBits) {
  // Mode 0074: owner has NOTHING, group has rwx. The owner check uses owner bits.
  fs_.InstallFile("/weird", "w", 0074);
  InodeRef inode;
  Lookup("/weird", &inode);
  inode->uid = 1000;
  inode->gid = 1000;
  Cred owner;
  owner.ruid = owner.euid = 1000;
  owner.rgid = owner.egid = 1000;
  EXPECT_FALSE(CredPermits(owner, inode->uid, inode->gid, inode->mode_bits, kROk));
}

TEST_F(VfsTest, OpenCreateExclusiveAndTruncate) {
  InodeRef inode;
  EXPECT_EQ(fs_.Open(env_, "/new", kOCreat | kOWronly, 0644, &inode), 0);
  EXPECT_TRUE(inode->IsRegular());
  EXPECT_EQ(fs_.Open(env_, "/new", kOCreat | kOExcl | kOWronly, 0644, &inode), -kEExist);
  inode->data = "hello";
  fs_.ResizeFile(inode, 5);
  EXPECT_EQ(fs_.Open(env_, "/new", kOTrunc | kOWronly, 0, &inode), 0);
  EXPECT_TRUE(inode->data.empty());
}

TEST_F(VfsTest, OpenDirectoryForWriteFails) {
  fs_.MkdirAll("/d");
  InodeRef inode;
  EXPECT_EQ(fs_.Open(env_, "/d", kOWronly, 0, &inode), -kEIsdir);
  EXPECT_EQ(fs_.Open(env_, "/d", kORdwr, 0, &inode), -kEIsdir);
  EXPECT_EQ(fs_.Open(env_, "/d", kORdonly, 0, &inode), 0);
}

TEST_F(VfsTest, TruncateSemantics) {
  fs_.InstallFile("/t", "1234567890");
  EXPECT_EQ(fs_.Truncate(env_, "/t", 4), 0);
  EXPECT_EQ(FileSize("/t"), 4);
  EXPECT_EQ(fs_.Truncate(env_, "/t", 8), 0);  // extends with NULs
  InodeRef inode;
  Lookup("/t", &inode);
  EXPECT_EQ(inode->data, std::string("1234") + std::string(4, '\0'));
  EXPECT_EQ(fs_.Truncate(env_, "/t", -1), -kEInval);
  fs_.MkdirAll("/d");
  EXPECT_EQ(fs_.Truncate(env_, "/d", 0), -kEIsdir);
}

TEST_F(VfsTest, ChmodChownRules) {
  fs_.InstallFile("/owned", "x");
  InodeRef inode;
  Lookup("/owned", &inode);
  inode->uid = 1000;

  Cred owner;
  owner.ruid = owner.euid = 1000;
  NameiEnv owner_env{fs_.root(), fs_.root(), &owner};
  EXPECT_EQ(fs_.Chmod(owner_env, "/owned", 0600), 0);
  EXPECT_EQ(inode->mode_bits, 0600u);
  // Only root may chown (4.3BSD rule).
  EXPECT_EQ(fs_.Chown(owner_env, "/owned", 1001, -1), -kEPerm);
  EXPECT_EQ(fs_.Chown(env_, "/owned", 1001, 77), 0);
  EXPECT_EQ(inode->uid, 1001);
  EXPECT_EQ(inode->gid, 77);

  Cred other;
  other.ruid = other.euid = 2222;
  NameiEnv other_env{fs_.root(), fs_.root(), &other};
  EXPECT_EQ(fs_.Chmod(other_env, "/owned", 0777), -kEPerm);
}

TEST_F(VfsTest, TotalBytesAccounting) {
  EXPECT_GE(fs_.total_bytes(), 0);
  const int64_t before = fs_.total_bytes();
  fs_.InstallFile("/bytes", std::string(1000, 'b'));
  EXPECT_EQ(fs_.total_bytes(), before + 1000);
  fs_.Truncate(env_, "/bytes", 200);
  EXPECT_EQ(fs_.total_bytes(), before + 200);
  fs_.Unlink(env_, "/bytes");
  EXPECT_EQ(fs_.total_bytes(), before);
}

TEST_F(VfsTest, AbsolutePathOf) {
  fs_.MkdirAll("/x/y/z");
  InodeRef inode;
  Lookup("/x/y/z", &inode);
  EXPECT_EQ(fs_.AbsolutePathOf(inode), "/x/y/z");
  EXPECT_EQ(fs_.AbsolutePathOf(fs_.root()), "/");
}

TEST_F(VfsTest, CountReachableInodes) {
  const size_t base = fs_.CountReachableInodes();
  fs_.MkdirAll("/c1/c2");
  fs_.InstallFile("/c1/f", "x");
  EXPECT_EQ(fs_.CountReachableInodes(), base + 3);
}

TEST_F(VfsTest, NlinkTracksDirectoryChildren) {
  fs_.MkdirAll("/p");
  InodeRef parent;
  Lookup("/p", &parent);
  EXPECT_EQ(parent->nlink, 2);
  fs_.MkdirAll("/p/c1");
  fs_.MkdirAll("/p/c2");
  EXPECT_EQ(parent->nlink, 4);  // 2 + one ".." per child
  fs_.Rmdir(env_, "/p/c1");
  EXPECT_EQ(parent->nlink, 3);
}


TEST_F(VfsTest, RenameKeepsByteAccounting) {
  const int64_t before = fs_.total_bytes();
  fs_.InstallFile("/acct", std::string(300, 'a'));
  ASSERT_EQ(fs_.Rename(env_, "/acct", "/moved"), 0);
  EXPECT_EQ(fs_.total_bytes(), before + 300);
  // Rename over an existing file releases only the replaced file's bytes.
  fs_.InstallFile("/other", std::string(100, 'b'));
  ASSERT_EQ(fs_.Rename(env_, "/moved", "/other"), 0);
  EXPECT_EQ(fs_.total_bytes(), before + 300);
  ASSERT_EQ(fs_.Unlink(env_, "/other"), 0);
  EXPECT_EQ(fs_.total_bytes(), before);
}

TEST_F(VfsTest, HardLinkUnlinkByteAccounting) {
  const int64_t before = fs_.total_bytes();
  fs_.InstallFile("/linked", std::string(50, 'x'));
  ASSERT_EQ(fs_.Link(env_, "/linked", "/alias"), 0);
  ASSERT_EQ(fs_.Unlink(env_, "/linked"), 0);
  EXPECT_EQ(fs_.total_bytes(), before + 50);  // still reachable via /alias
  ASSERT_EQ(fs_.Unlink(env_, "/alias"), 0);
  EXPECT_EQ(fs_.total_bytes(), before);
}

TEST_F(VfsTest, MknodFifo) {
  EXPECT_EQ(fs_.MknodFifo(env_, "/fifo", 0644), 0);
  InodeRef inode;
  EXPECT_EQ(Lookup("/fifo", &inode), 0);
  EXPECT_TRUE(inode->IsFifo());
  EXPECT_EQ(fs_.MknodFifo(env_, "/fifo", 0644), -kEExist);
}

// --- trailing-slash creation (4.3BSD: a missing final component with a '/'
// can only ever name a directory) ---------------------------------------------

TEST_F(VfsTest, OpenCreateTrailingSlashRejected) {
  InodeRef out;
  EXPECT_EQ(fs_.Open(env_, "/newfile/", kOCreat | kOWronly, 0644, &out), -kEIsdir);
  EXPECT_EQ(Lookup("/newfile"), -kENoent);  // nothing may be created
  // An existing regular file through a trailing slash is still ENOTDIR.
  fs_.InstallFile("/plain", "x");
  EXPECT_EQ(fs_.Open(env_, "/plain/", kOCreat | kOWronly, 0644, &out), -kENotdir);
  // Opening an existing directory via a trailing slash still works read-only.
  fs_.MkdirAll("/adir");
  EXPECT_EQ(fs_.Open(env_, "/adir/", kORdonly, 0, &out), 0);
}

TEST_F(VfsTest, MkdirTrailingSlashStillWorks) {
  EXPECT_EQ(fs_.Mkdir(env_, "/newdir/", 0755), 0);
  InodeRef inode;
  EXPECT_EQ(Lookup("/newdir", &inode), 0);
  EXPECT_TRUE(inode->IsDirectory());
}

TEST_F(VfsTest, SymlinkLinkMknodTrailingSlashRejected) {
  fs_.InstallFile("/existing", "x");
  EXPECT_EQ(fs_.Symlink(env_, "/existing", "/sym/"), -kENoent);
  EXPECT_EQ(Lookup("/sym"), -kENoent);
  EXPECT_EQ(fs_.Link(env_, "/existing", "/hard/"), -kENoent);
  EXPECT_EQ(Lookup("/hard"), -kENoent);
  EXPECT_EQ(fs_.MknodFifo(env_, "/pipe/", 0644), -kENoent);
  EXPECT_EQ(Lookup("/pipe"), -kENoent);
}

TEST_F(VfsTest, RenameTrailingSlashDestination) {
  fs_.InstallFile("/rfile", "x");
  // A non-directory source cannot land on a directory-shaped destination.
  EXPECT_EQ(fs_.Rename(env_, "/rfile", "/dest/"), -kENotdir);
  EXPECT_EQ(Lookup("/dest"), -kENoent);
  // A directory source can.
  fs_.MkdirAll("/rdir");
  EXPECT_EQ(fs_.Rename(env_, "/rdir", "/moveddir/"), 0);
  InodeRef inode;
  EXPECT_EQ(Lookup("/moveddir", &inode), 0);
  EXPECT_TRUE(inode->IsDirectory());
}

// --- rename replace-path audit ------------------------------------------------

TEST_F(VfsTest, RenameReplaceTypeMatrix) {
  fs_.InstallFile("/mfile", "f");
  fs_.MkdirAll("/mdir");
  fs_.MkdirAll("/mempty");
  fs_.MkdirAll("/mfull/kid");
  ASSERT_EQ(fs_.Symlink(env_, "/mfile", "/mlink"), 0);

  // file over directory / directory over file.
  EXPECT_EQ(fs_.Rename(env_, "/mfile", "/mdir"), -kEIsdir);
  EXPECT_EQ(fs_.Rename(env_, "/mdir", "/mfile"), -kENotdir);
  // symlinks count as non-directories on both sides.
  EXPECT_EQ(fs_.Rename(env_, "/mlink", "/mdir"), -kEIsdir);
  EXPECT_EQ(fs_.Rename(env_, "/mdir", "/mlink"), -kENotdir);
  // directory over non-empty directory.
  EXPECT_EQ(fs_.Rename(env_, "/mdir", "/mfull"), -kENotempty);
  // directory over empty directory succeeds.
  EXPECT_EQ(fs_.Rename(env_, "/mdir", "/mempty"), 0);
  EXPECT_EQ(Lookup("/mdir"), -kENoent);
  // file over symlink replaces the symlink itself.
  EXPECT_EQ(fs_.Rename(env_, "/mfile", "/mlink"), 0);
  InodeRef inode;
  ASSERT_EQ(Lookup("/mlink", &inode, /*follow=*/false), 0);
  EXPECT_TRUE(inode->IsRegular());
}

TEST_F(VfsTest, RenameReplaceHardLinkedFileKeepsBytes) {
  const int64_t before = fs_.total_bytes();
  fs_.InstallFile("/ha", std::string(40, 'a'));
  fs_.InstallFile("/hb", std::string(70, 'b'));
  ASSERT_EQ(fs_.Link(env_, "/hb", "/hb2"), 0);
  EXPECT_EQ(fs_.total_bytes(), before + 110);
  // Replacing one of two links must NOT release the replaced file's bytes.
  ASSERT_EQ(fs_.Rename(env_, "/ha", "/hb"), 0);
  EXPECT_EQ(fs_.total_bytes(), before + 110);
  ASSERT_EQ(fs_.Unlink(env_, "/hb2"), 0);  // last link: now the 70 bytes go
  EXPECT_EQ(fs_.total_bytes(), before + 40);
  ASSERT_EQ(fs_.Unlink(env_, "/hb"), 0);
  EXPECT_EQ(fs_.total_bytes(), before);
}

// --- symlink-expansion edge cases --------------------------------------------

TEST_F(VfsTest, SymlinkDepthLimitIsBsdMaxsymlinks) {
  // 4.3BSD pins MAXSYMLINKS at 8; the boundary tests below depend on it.
  EXPECT_EQ(kMaxSymlinkDepth, 8);
}

TEST_F(VfsTest, SymlinkChainBothSidesOfTheBoundary) {
  fs_.InstallFile("/end", "x");
  std::string prev = "/end";
  for (int i = 0; i < kMaxSymlinkDepth; ++i) {
    const std::string link = "/b" + std::to_string(i);
    ASSERT_EQ(fs_.Symlink(env_, prev, link), 0);
    prev = link;
  }
  // Exactly MAXSYMLINKS expansions resolve...
  InodeRef inode;
  EXPECT_EQ(Lookup(prev, &inode), 0);
  EXPECT_EQ(inode->data, "x");
  // ...and the (MAXSYMLINKS+1)th fails with ELOOP, not ENOENT.
  ASSERT_EQ(fs_.Symlink(env_, prev, "/b_over"), 0);
  EXPECT_EQ(Lookup("/b_over"), -kELoop);
}

TEST_F(VfsTest, SymlinkTargetDot) {
  fs_.MkdirAll("/sd");
  fs_.InstallFile("/sd/f", "x");
  ASSERT_EQ(fs_.Symlink(env_, ".", "/sd/self"), 0);
  InodeRef via;
  EXPECT_EQ(Lookup("/sd/self", &via), 0);
  InodeRef direct;
  ASSERT_EQ(Lookup("/sd", &direct), 0);
  EXPECT_EQ(via, direct);  // "." resolves to the symlink's own directory
  EXPECT_EQ(Lookup("/sd/self/f", &via), 0);
  EXPECT_EQ(via->data, "x");
}

TEST_F(VfsTest, SymlinkTargetDotDot) {
  fs_.MkdirAll("/up/down");
  fs_.InstallFile("/up/g", "y");
  ASSERT_EQ(fs_.Symlink(env_, "..", "/up/down/back"), 0);
  InodeRef via;
  EXPECT_EQ(Lookup("/up/down/back", &via), 0);
  InodeRef direct;
  ASSERT_EQ(Lookup("/up", &direct), 0);
  EXPECT_EQ(via, direct);
  EXPECT_EQ(Lookup("/up/down/back/g", &via), 0);
  EXPECT_EQ(via->data, "y");
}

TEST_F(VfsTest, SymlinkTargetAbsoluteWithDotDot) {
  fs_.MkdirAll("/x/y");
  fs_.InstallFile("/x/h", "z");
  // "/x/y/../h" — absolute target whose dotdot must resolve against the
  // REAL tree (through /x/y), not lexically.
  ASSERT_EQ(fs_.Symlink(env_, "/x/y/../h", "/jump"), 0);
  InodeRef via;
  EXPECT_EQ(Lookup("/jump", &via), 0);
  EXPECT_EQ(via->data, "z");
  // Dotdot above the root inside a target stays at the root.
  ASSERT_EQ(fs_.Symlink(env_, "/../x/h", "/rooty"), 0);
  EXPECT_EQ(Lookup("/rooty", &via), 0);
  EXPECT_EQ(via->data, "z");
}

}  // namespace
}  // namespace ia
