// Concurrency stress tests for the big-lock breakup: kPerProcess and kVfsRead
// fast paths racing big-lock mutators, shared descriptors hammered from forked
// children, observability snapshots taken mid-storm, and the table invariants
// the three-lane dispatcher depends on. These tests are the primary targets of
// the ThreadSanitizer gate (scripts/check_sanitize.sh --tsan): they are
// written to maximize real interleavings, not to assert timing.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/kernel/syscall_table.h"
#include "src/kernel/types.h"
#include "tests/test_helpers.h"

namespace ia {
namespace {

using test::ExitCodeOf;
using test::FileContents;
using test::RunBody;

// The three-lane dispatcher's correctness hinges on table invariants:
// kPerProcess rows run with NO kernel lock, so they must never be able to
// sleep (a sleep needs mu_ and the condvar), and every fast-path flag must
// sit on an implemented row (the fast paths assume a handler exists).
TEST(ConcurrencyTable, PerProcessRowsAreNonBlockingAndImplemented) {
  int per_process_rows = 0;
  int vfs_read_rows = 0;
  for (int n = 0; n < kMaxSyscall; ++n) {
    const SyscallSpec& spec = SyscallSpecOf(n);
    if ((spec.flags & kPerProcess) != 0) {
      ++per_process_rows;
      EXPECT_EQ(spec.flags & kBlocking, 0u)
          << spec.name << " is kPerProcess|kBlocking: a lock-free dispatch cannot sleep";
      EXPECT_NE(spec.flags & kImplemented, 0u)
          << spec.name << " is kPerProcess but has no handler";
      EXPECT_EQ(spec.flags & kVfsRead, 0u)
          << spec.name << " claims both fast-path lanes; the dispatcher picks one";
    }
    if ((spec.flags & kVfsRead) != 0) {
      ++vfs_read_rows;
      EXPECT_NE(spec.flags & kImplemented, 0u) << spec.name << " is kVfsRead but unimplemented";
    }
  }
  // The split is meaningful only if both lanes carry real traffic.
  EXPECT_GE(per_process_rows, 15);
  EXPECT_GE(vfs_read_rows, 8);
}

// Forked children inherit the parent's descriptors and hammer the SAME
// OpenFile: the shared offset, flags, and inode time stamps are the atomics
// the close/read fast paths rely on. The assertions are pure safety (every
// read returns a full block from within the file); the interleaving itself is
// what TSan inspects.
TEST(ConcurrencyStress, SharedFdHammeringAcrossForkedChildren) {
  auto kernel = test::MakeWorld();
  kernel->fs().InstallFile("/shared.dat", std::string(4096, 's'));
  const int status = RunBody(*kernel, [](ProcessContext& ctx) {
    const int fd = ctx.Open("/shared.dat", kORdwr);
    if (fd < 0) {
      return 10;
    }
    constexpr int kChildren = 4;
    for (int c = 0; c < kChildren; ++c) {
      const Pid child = ctx.Fork([fd](ProcessContext& child_ctx) {
        char buf[64];
        Stat st;
        for (int i = 0; i < 1500; ++i) {
          // Racing lseek/read pairs on a shared offset: any interleaving is
          // legal, but every read must stay inside the file.
          if (child_ctx.Lseek(fd, (i % 32) * 64, kSeekSet) < 0) {
            return 1;
          }
          const int64_t n = child_ctx.Read(fd, buf, sizeof buf);
          if (n < 0 || n > static_cast<int64_t>(sizeof buf)) {
            return 2;
          }
          if (child_ctx.Fstat(fd, &st) != 0 || st.st_size != 4096) {
            return 3;
          }
          // A private descriptor opened and closed per iteration exercises
          // the unlocked close fast path concurrently with the shared fd.
          const int own = child_ctx.Open("/shared.dat", kORdonly);
          if (own < 0 || child_ctx.Close(own) != 0) {
            return 4;
          }
        }
        return 0;
      });
      if (child < 0) {
        return 11;
      }
    }
    int failures = 0;
    for (int c = 0; c < kChildren; ++c) {
      int child_status = 0;
      if (ctx.Wait(&child_status) < 0 || WExitStatus(child_status) != 0) {
        ++failures;
      }
    }
    return failures;
  });
  ASSERT_TRUE(WifExited(status));
  EXPECT_EQ(WExitStatus(status), 0);
}

// One process renames a file back and forth (big-lock lane, exclusive tree
// lock) while two others stat both names through the shared-tree fast path.
// Every stat must observe exactly "present" or "absent" — never a partial
// rename, never a spurious errno — and the final tree state must be exact.
TEST(ConcurrencyStress, ConcurrentRenameVsStat) {
  auto kernel = test::MakeWorld();
  kernel->fs().MkdirAll("/dir");
  kernel->fs().InstallFile("/dir/a", "payload");

  SpawnOptions mover_options;
  mover_options.body = [](ProcessContext& ctx) {
    for (int i = 0; i < 1200; ++i) {
      if (ctx.Rename("/dir/a", "/dir/b") != 0 || ctx.Rename("/dir/b", "/dir/a") != 0) {
        return 1;  // the only mover: every rename must succeed
      }
    }
    return 0;
  };
  const Pid mover = kernel->Spawn(mover_options);

  std::vector<Pid> statters;
  for (int s = 0; s < 2; ++s) {
    SpawnOptions options;
    options.body = [](ProcessContext& ctx) {
      Stat st;
      int seen_a = 0;
      int seen_b = 0;
      for (int i = 0; i < 2400; ++i) {
        for (const char* path : {"/dir/a", "/dir/b"}) {
          const int err = ctx.Stat(path, &st);
          if (err == 0) {
            if (st.st_size != 7) {
              return 2;  // visible file must always be the whole payload
            }
            (path[5] == 'a' ? seen_a : seen_b) += 1;
          } else if (err != -kENoent) {
            return 3;  // rename-in-progress must never leak another errno
          }
        }
      }
      // The file exists under exactly one name at all times; across thousands
      // of probes at least one name must have been visible.
      return seen_a + seen_b > 0 ? 0 : 4;
    };
    statters.push_back(kernel->Spawn(options));
  }

  const int mover_status = kernel->HostWaitPid(mover);
  EXPECT_TRUE(WifExited(mover_status));
  EXPECT_EQ(WExitStatus(mover_status), 0);
  for (const Pid pid : statters) {
    const int status = kernel->HostWaitPid(pid);
    EXPECT_TRUE(WifExited(status));
    EXPECT_EQ(WExitStatus(status), 0);
  }
  EXPECT_EQ(FileContents(*kernel, "/dir/a"), "payload");  // even rename count
  EXPECT_EQ(FileContents(*kernel, "/dir/b"), "<missing>");
}

// A fork/exit storm runs while the host thread takes SyscallStats /
// TotalSyscallCount / CacheStats snapshots as fast as it can. Snapshots
// during the storm only need to be safe (TSan's concern) and monotonic;
// after quiescing, the counters must be exact.
TEST(ConcurrencyStress, ForkExitStormVsStatsSnapshots) {
  auto kernel = test::MakeWorld();
  constexpr int kForks = 250;
  std::atomic<bool> done{false};

  SpawnOptions options;
  options.body = [&done](ProcessContext& ctx) {
    int failures = 0;
    for (int i = 0; i < kForks; ++i) {
      const Pid child = ctx.Fork([](ProcessContext&) { return 0; });
      if (child < 0) {
        ++failures;
        continue;
      }
      int status = 0;
      if (ctx.Wait(&status) < 0) {
        ++failures;
      }
    }
    done.store(true, std::memory_order_release);
    return failures;
  };
  // Snapshot BEFORE the spawn: the storm body starts concurrently the moment
  // Spawn returns, so a snapshot taken after it races the first forks and the
  // exact-delta checks below undercount.
  const auto before = kernel->SyscallStats();
  int64_t last_total = kernel->TotalSyscallCount();
  const Pid pid = kernel->Spawn(options);

  int64_t snapshots = 0;
  while (!done.load(std::memory_order_acquire)) {
    const auto mid = kernel->SyscallStats();
    const int64_t total = kernel->TotalSyscallCount();
    EXPECT_GE(total, last_total) << "TotalSyscallCount went backwards mid-storm";
    EXPECT_GE(mid[kSysFork].calls, before[kSysFork].calls);
    (void)kernel->CacheStats();
    (void)kernel->LiveProcessCount();
    last_total = total;
    ++snapshots;
  }
  const int status = kernel->HostWaitPid(pid);
  ASSERT_TRUE(WifExited(status));
  EXPECT_EQ(WExitStatus(status), 0);
  EXPECT_GT(snapshots, 0);

  // Quiesced: every relaxed counter store is ordered before this read by the
  // thread joins above, so the arithmetic is exact.
  const auto after = kernel->SyscallStats();
  EXPECT_EQ(after[kSysFork].calls - before[kSysFork].calls, kForks);
  EXPECT_EQ(after[kSysWait4].calls - before[kSysWait4].calls, kForks);
  EXPECT_EQ(after[kSysExit].calls - before[kSysExit].calls, kForks + 1);
  int64_t summed = 0;
  for (int n = 0; n < kMaxSyscall; ++n) {
    summed += after[n].calls;
  }
  EXPECT_EQ(summed, kernel->TotalSyscallCount());
}

// The contract behind kPerProcess: those rows must complete while another
// process sleeps inside the kernel. Process A parks in wait4 (its child is
// parked in sigpause); process B then runs a burst of kPerProcess calls to
// completion. Under the old single-lock dispatcher this still worked only
// because cv_.wait dropped mu_; here the assertion is stronger — B finishes
// its whole burst while A has demonstrably not returned, and on a
// TSan/1-core host any accidental dependence on the big lock shows up as a
// hang (ctest's timeout) rather than a flake.
TEST(ConcurrencyStress, PerProcessCallsCompleteWhileAnotherProcessSleepsInWait4) {
  auto kernel = test::MakeWorld();
  std::atomic<Pid> child_pid{0};
  std::atomic<bool> a_returned{false};

  SpawnOptions a_options;
  a_options.body = [&child_pid, &a_returned](ProcessContext& ctx) {
    const Pid child = ctx.Fork([](ProcessContext& child_ctx) {
      child_ctx.Sigpause(0);  // parks until a signal arrives
      return 0;
    });
    child_pid.store(child, std::memory_order_release);
    int status = 0;
    const Pid reaped = ctx.Wait(&status);  // parks in wait4 until the child dies
    a_returned.store(true, std::memory_order_release);
    return reaped == child ? 0 : 1;
  };
  const Pid a = kernel->Spawn(a_options);
  while (child_pid.load(std::memory_order_acquire) == 0) {
    // spin: A has not forked yet
  }

  // B: a pure kPerProcess burst. If any of these rows needed the big lock
  // while a sleeper interacts with it, this would stall; instead it must run
  // to completion while A is still parked.
  const int b_exit = ExitCodeOf(*kernel, [](ProcessContext& ctx) {
    Rusage ru;
    TimeVal tv;
    for (int i = 0; i < 20000; ++i) {
      if (ctx.Getpid() <= 0) {
        return 1;
      }
      ctx.Gettimeofday(&tv, nullptr);
      ctx.Sigblock(0);
      ctx.Getrusage(kRusageSelf, &ru);
    }
    return 0;
  });
  EXPECT_EQ(b_exit, 0);
  EXPECT_FALSE(a_returned.load(std::memory_order_acquire))
      << "A returned from wait4 before its sleeping child was signaled";

  // Release the sleepers: a third process signals A's child.
  const Pid target = child_pid.load(std::memory_order_acquire);
  EXPECT_EQ(ExitCodeOf(*kernel,
                       [target](ProcessContext& ctx) {
                         return ctx.Kill(target, kSigTerm) == 0 ? 0 : 1;
                       }),
            0);
  const int a_status = kernel->HostWaitPid(a);
  ASSERT_TRUE(WifExited(a_status));
  EXPECT_EQ(WExitStatus(a_status), 0);
  EXPECT_TRUE(a_returned.load(std::memory_order_acquire));
}

// Many clients pound the kVfsRead lane (stat/open/read/close) against one
// shared tree while a mutator churns a sibling directory under the exclusive
// lock. Mixed shared/exclusive tree traffic is where a reader/writer bug
// would corrupt a walk; every client must see fully consistent files.
TEST(ConcurrencyStress, SharedTreeReadersVsExclusiveMutator) {
  auto kernel = test::MakeWorld();
  kernel->fs().MkdirAll("/hot");
  kernel->fs().MkdirAll("/churn");
  for (int f = 0; f < 4; ++f) {
    kernel->fs().InstallFile("/hot/f" + std::to_string(f), std::string(256, 'h'));
  }

  std::vector<Pid> pids;
  for (int r = 0; r < 3; ++r) {
    SpawnOptions options;
    options.body = [](ProcessContext& ctx) {
      char buf[256];
      Stat st;
      for (int i = 0; i < 2000; ++i) {
        const std::string path = "/hot/f" + std::to_string(i % 4);
        if (ctx.Stat(path, &st) != 0 || st.st_size != 256) {
          return 1;
        }
        const int fd = ctx.Open(path, kORdonly);
        if (fd < 0) {
          return 2;
        }
        if (ctx.Read(fd, buf, sizeof buf) != 256 || buf[0] != 'h' || buf[255] != 'h') {
          return 3;
        }
        if (ctx.Close(fd) != 0) {
          return 4;
        }
      }
      return 0;
    };
    pids.push_back(kernel->Spawn(options));
  }
  SpawnOptions mutator_options;
  mutator_options.body = [](ProcessContext& ctx) {
    for (int i = 0; i < 1000; ++i) {
      const std::string name = "/churn/t" + std::to_string(i % 13);
      const int fd = ctx.Open(name, kOCreat | kOWronly, 0644);
      if (fd < 0) {
        return 1;
      }
      if (ctx.Write(fd, "wwww", 4) != 4 || ctx.Close(fd) != 0) {
        return 2;
      }
      if (i % 3 == 0 && ctx.Unlink(name) != 0) {
        return 3;
      }
    }
    return 0;
  };
  pids.push_back(kernel->Spawn(mutator_options));

  for (const Pid pid : pids) {
    const int status = kernel->HostWaitPid(pid);
    EXPECT_TRUE(WifExited(status));
    EXPECT_EQ(WExitStatus(status), 0);
  }
}

// World sizes self-cap under TSan (instrumentation slowdown), same as the
// ring stress tests.
#if defined(__SANITIZE_THREAD__)
#define IA_SOCKET_STRESS_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define IA_SOCKET_STRESS_UNDER_TSAN 1
#endif
#endif
#ifndef IA_SOCKET_STRESS_UNDER_TSAN
#define IA_SOCKET_STRESS_UNDER_TSAN 0
#endif

// Forked children share BOTH ends of one socketpair and hammer them
// concurrently: several writers pushing into the same ring (blocking when
// full) while the parent drains from the shared read end. Byte conservation
// is the only functional assertion; the interleavings — concurrent Send
// big-lock dispatches, close-time end accounting, CV wakeups across
// processes — are what TSan inspects.
TEST(SocketStress, ForkSharedSocketpairHammering) {
  auto kernel = test::MakeWorld();
  const int status = RunBody(*kernel, [](ProcessContext& ctx) {
    constexpr int kWriters = 3;
    constexpr int kBytesEach = IA_SOCKET_STRESS_UNDER_TSAN ? 16 * 1024 : 64 * 1024;
    int sv[2];
    if (ctx.Socketpair(kAfUnix, kSockStream, 0, sv) != 0) {
      return 10;
    }
    for (int w = 0; w < kWriters; ++w) {
      ctx.Fork([&sv](ProcessContext& c) {
        c.Close(sv[1]);  // writers hold only the write-side end
        char chunk[512];
        for (char& b : chunk) {
          b = 'w';
        }
        int64_t sent = 0;
        while (sent < kBytesEach) {
          const int64_t n = c.Send(sv[0], chunk,
                                   std::min<int64_t>(sizeof chunk, kBytesEach - sent));
          if (n <= 0) {
            return 1;
          }
          sent += n;
          if (sent % 8192 == 0) {
            // Stress the descriptor plane from the side: shared-fd fstat and
            // dup/close churn race the transfer plane's big-lock handlers.
            Stat st;
            if (c.Fstat(sv[0], &st) != 0) {
              return 2;
            }
            const int dup = c.Dup(sv[0]);
            if (dup < 0 || c.Close(dup) != 0) {
              return 3;
            }
          }
        }
        return c.Close(sv[0]) == 0 ? 0 : 4;
      });
    }
    ctx.Close(sv[0]);  // parent holds only the read end; EOF when writers finish
    int64_t received = 0;
    char buf[1024];
    for (;;) {
      const int64_t n = ctx.Recv(sv[1], buf, sizeof buf);
      if (n < 0) {
        return 11;
      }
      if (n == 0) {
        break;
      }
      received += n;
    }
    for (int w = 0; w < kWriters; ++w) {
      int child_status = 0;
      if (ctx.Wait(&child_status) < 0 || !WifExited(child_status) ||
          WExitStatus(child_status) != 0) {
        return 12;
      }
    }
    return received == static_cast<int64_t>(kWriters) * kBytesEach ? 0 : 13;
  });
  ASSERT_TRUE(WifExited(status));
  EXPECT_EQ(WExitStatus(status), 0);
}

// Accept racing client-side close: clients connect and sometimes slam the
// connection shut before the server's accept pops it from the pending queue.
// Every accept must still return a coherent endpoint — either live (ping
// echoes) or orphaned (recv gives clean EOF, never a hang or a junk fd).
TEST(SocketStress, AcceptVersusClientCloseRaces) {
  auto kernel = test::MakeWorld();
  const int status = RunBody(*kernel, [](ProcessContext& ctx) {
    constexpr int kDials = IA_SOCKET_STRESS_UNDER_TSAN ? 60 : 200;
    const int lfd = ctx.Socket(kAfUnix, kSockStream, 0);
    if (ctx.BindUnix(lfd, "/race.sock") != 0 || ctx.Listen(lfd, kSoMaxConn) != 0) {
      return 10;
    }
    const Pid child = ctx.Fork([](ProcessContext& c) {
      for (int i = 0; i < kDials; ++i) {
        const int fd = c.Socket(kAfUnix, kSockStream, 0);
        if (fd < 0) {
          return 1;
        }
        const int err = c.ConnectUnix(fd, "/race.sock");
        if (err == -kEConnrefused) {
          c.Close(fd);
          --i;  // backlog momentarily full: redial
          c.Compute(50);
          std::this_thread::yield();  // give the accepting thread host cycles
          continue;
        }
        if (err != 0) {
          return 2;
        }
        if (i % 2 == 0) {
          c.Close(fd);  // slam: close before the server accepts
          continue;
        }
        char b = 'p';
        if (c.Send(fd, &b, 1) != 1) {
          return 3;
        }
        if (c.Recv(fd, &b, 1) != 1 || b != 'q') {
          return 4;
        }
        c.Close(fd);
      }
      return 0;
    });
    for (int served = 0; served < kDials; ++served) {
      const int cfd = ctx.Accept(lfd);
      if (cfd < 0) {
        return 11;
      }
      char b;
      const int64_t n = ctx.Recv(cfd, &b, 1);
      if (n == 1 && b == 'p') {
        b = 'q';
        if (ctx.Send(cfd, &b, 1) != 1) {
          return 12;  // the client is still waiting for this reply
        }
      } else if (n != 0) {
        return 13;  // orphaned connections must read as clean EOF
      }
      if (ctx.Close(cfd) != 0) {
        return 14;
      }
    }
    ctx.Close(lfd);
    int child_status = 0;
    ctx.Wait4(child, &child_status, 0, nullptr);
    return WifExited(child_status) ? WExitStatus(child_status) : 15;
  });
  ASSERT_TRUE(WifExited(status));
  EXPECT_EQ(WExitStatus(status), 0);
}

// Many client processes rendezvous with one server process by pathname while
// an unrelated mutator churns the same directory: socket rendezvous
// (Namei-driven connect under the full tree lock) interleaving with VFS
// create/unlink traffic and the vfs-read fast lanes.
TEST(SocketStress, PathnameRendezvousUnderVfsChurn) {
  auto kernel = test::MakeWorld();
  constexpr int kClients = IA_SOCKET_STRESS_UNDER_TSAN ? 3 : 6;
  constexpr int kRequestsEach = IA_SOCKET_STRESS_UNDER_TSAN ? 15 : 40;

  SpawnOptions server_options;
  server_options.body = [](ProcessContext& ctx) {
    ctx.Mkdir("/hub", 0755);
    const int lfd = ctx.Socket(kAfUnix, kSockStream, 0);
    if (ctx.BindUnix(lfd, "/hub/srv.sock") != 0 || ctx.Listen(lfd, kSoMaxConn) != 0) {
      return 1;
    }
    for (int served = 0; served < kClients * kRequestsEach; ++served) {
      const int cfd = ctx.Accept(lfd);
      if (cfd < 0) {
        return 2;
      }
      char b;
      if (ctx.Recv(cfd, &b, 1) == 1) {
        ctx.Send(cfd, &b, 1);
      }
      ctx.Close(cfd);
    }
    return 0;
  };
  const Pid server = kernel->Spawn(server_options);

  std::vector<Pid> pids;
  for (int c = 0; c < kClients; ++c) {
    SpawnOptions options;
    options.body = [](ProcessContext& ctx) {
      for (int i = 0; i < kRequestsEach; ++i) {
        int fd = -1;
        for (int attempt = 0; attempt < 20000; ++attempt) {
          fd = ctx.Socket(kAfUnix, kSockStream, 0);
          const int err = ctx.ConnectUnix(fd, "/hub/srv.sock");
          if (err == 0) {
            break;
          }
          ctx.Close(fd);
          fd = -1;
          if (err != -kENoent && err != -kEConnrefused) {
            return 1;
          }
          // Compute only advances the virtual clock; the yield hands real host
          // cycles to the server thread racing to bind and accept.
          ctx.Compute(100);
          std::this_thread::yield();
        }
        if (fd < 0) {
          return 2;
        }
        char b = 'm';
        if (ctx.Send(fd, &b, 1) != 1 || ctx.Recv(fd, &b, 1) != 1 || b != 'm') {
          return 3;
        }
        ctx.Close(fd);
      }
      return 0;
    };
    pids.push_back(kernel->Spawn(options));
  }
  SpawnOptions mutator_options;
  mutator_options.body = [](ProcessContext& ctx) {
    for (int i = 0; i < (IA_SOCKET_STRESS_UNDER_TSAN ? 200 : 800); ++i) {
      const std::string name = "/hub/f" + std::to_string(i % 7);
      const int fd = ctx.Open(name, kOCreat | kOWronly, 0644);
      if (fd >= 0) {
        ctx.Write(fd, "x", 1);
        ctx.Close(fd);
      }
      Stat st;
      ctx.Stat("/hub/srv.sock", &st);  // vfs-read lane against the socket node
      if (i % 4 == 0) {
        ctx.Unlink(name);
      }
    }
    return 0;
  };
  pids.push_back(kernel->Spawn(mutator_options));

  pids.push_back(server);
  for (const Pid pid : pids) {
    const int status = kernel->HostWaitPid(pid);
    EXPECT_TRUE(WifExited(status));
    EXPECT_EQ(WExitStatus(status), 0);
  }
}

}  // namespace
}  // namespace ia
