// Concurrency stress tests for the big-lock breakup: kPerProcess and kVfsRead
// fast paths racing big-lock mutators, shared descriptors hammered from forked
// children, observability snapshots taken mid-storm, and the table invariants
// the three-lane dispatcher depends on. These tests are the primary targets of
// the ThreadSanitizer gate (scripts/check_sanitize.sh --tsan): they are
// written to maximize real interleavings, not to assert timing.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/kernel/syscall_table.h"
#include "src/kernel/types.h"
#include "tests/test_helpers.h"

namespace ia {
namespace {

using test::ExitCodeOf;
using test::FileContents;
using test::RunBody;

// The three-lane dispatcher's correctness hinges on table invariants:
// kPerProcess rows run with NO kernel lock, so they must never be able to
// sleep (a sleep needs mu_ and the condvar), and every fast-path flag must
// sit on an implemented row (the fast paths assume a handler exists).
TEST(ConcurrencyTable, PerProcessRowsAreNonBlockingAndImplemented) {
  int per_process_rows = 0;
  int vfs_read_rows = 0;
  for (int n = 0; n < kMaxSyscall; ++n) {
    const SyscallSpec& spec = SyscallSpecOf(n);
    if ((spec.flags & kPerProcess) != 0) {
      ++per_process_rows;
      EXPECT_EQ(spec.flags & kBlocking, 0u)
          << spec.name << " is kPerProcess|kBlocking: a lock-free dispatch cannot sleep";
      EXPECT_NE(spec.flags & kImplemented, 0u)
          << spec.name << " is kPerProcess but has no handler";
      EXPECT_EQ(spec.flags & kVfsRead, 0u)
          << spec.name << " claims both fast-path lanes; the dispatcher picks one";
    }
    if ((spec.flags & kVfsRead) != 0) {
      ++vfs_read_rows;
      EXPECT_NE(spec.flags & kImplemented, 0u) << spec.name << " is kVfsRead but unimplemented";
    }
  }
  // The split is meaningful only if both lanes carry real traffic.
  EXPECT_GE(per_process_rows, 15);
  EXPECT_GE(vfs_read_rows, 8);
}

// Forked children inherit the parent's descriptors and hammer the SAME
// OpenFile: the shared offset, flags, and inode time stamps are the atomics
// the close/read fast paths rely on. The assertions are pure safety (every
// read returns a full block from within the file); the interleaving itself is
// what TSan inspects.
TEST(ConcurrencyStress, SharedFdHammeringAcrossForkedChildren) {
  auto kernel = test::MakeWorld();
  kernel->fs().InstallFile("/shared.dat", std::string(4096, 's'));
  const int status = RunBody(*kernel, [](ProcessContext& ctx) {
    const int fd = ctx.Open("/shared.dat", kORdwr);
    if (fd < 0) {
      return 10;
    }
    constexpr int kChildren = 4;
    for (int c = 0; c < kChildren; ++c) {
      const Pid child = ctx.Fork([fd](ProcessContext& child_ctx) {
        char buf[64];
        Stat st;
        for (int i = 0; i < 1500; ++i) {
          // Racing lseek/read pairs on a shared offset: any interleaving is
          // legal, but every read must stay inside the file.
          if (child_ctx.Lseek(fd, (i % 32) * 64, kSeekSet) < 0) {
            return 1;
          }
          const int64_t n = child_ctx.Read(fd, buf, sizeof buf);
          if (n < 0 || n > static_cast<int64_t>(sizeof buf)) {
            return 2;
          }
          if (child_ctx.Fstat(fd, &st) != 0 || st.st_size != 4096) {
            return 3;
          }
          // A private descriptor opened and closed per iteration exercises
          // the unlocked close fast path concurrently with the shared fd.
          const int own = child_ctx.Open("/shared.dat", kORdonly);
          if (own < 0 || child_ctx.Close(own) != 0) {
            return 4;
          }
        }
        return 0;
      });
      if (child < 0) {
        return 11;
      }
    }
    int failures = 0;
    for (int c = 0; c < kChildren; ++c) {
      int child_status = 0;
      if (ctx.Wait(&child_status) < 0 || WExitStatus(child_status) != 0) {
        ++failures;
      }
    }
    return failures;
  });
  ASSERT_TRUE(WifExited(status));
  EXPECT_EQ(WExitStatus(status), 0);
}

// One process renames a file back and forth (big-lock lane, exclusive tree
// lock) while two others stat both names through the shared-tree fast path.
// Every stat must observe exactly "present" or "absent" — never a partial
// rename, never a spurious errno — and the final tree state must be exact.
TEST(ConcurrencyStress, ConcurrentRenameVsStat) {
  auto kernel = test::MakeWorld();
  kernel->fs().MkdirAll("/dir");
  kernel->fs().InstallFile("/dir/a", "payload");

  SpawnOptions mover_options;
  mover_options.body = [](ProcessContext& ctx) {
    for (int i = 0; i < 1200; ++i) {
      if (ctx.Rename("/dir/a", "/dir/b") != 0 || ctx.Rename("/dir/b", "/dir/a") != 0) {
        return 1;  // the only mover: every rename must succeed
      }
    }
    return 0;
  };
  const Pid mover = kernel->Spawn(mover_options);

  std::vector<Pid> statters;
  for (int s = 0; s < 2; ++s) {
    SpawnOptions options;
    options.body = [](ProcessContext& ctx) {
      Stat st;
      int seen_a = 0;
      int seen_b = 0;
      for (int i = 0; i < 2400; ++i) {
        for (const char* path : {"/dir/a", "/dir/b"}) {
          const int err = ctx.Stat(path, &st);
          if (err == 0) {
            if (st.st_size != 7) {
              return 2;  // visible file must always be the whole payload
            }
            (path[5] == 'a' ? seen_a : seen_b) += 1;
          } else if (err != -kENoent) {
            return 3;  // rename-in-progress must never leak another errno
          }
        }
      }
      // The file exists under exactly one name at all times; across thousands
      // of probes at least one name must have been visible.
      return seen_a + seen_b > 0 ? 0 : 4;
    };
    statters.push_back(kernel->Spawn(options));
  }

  const int mover_status = kernel->HostWaitPid(mover);
  EXPECT_TRUE(WifExited(mover_status));
  EXPECT_EQ(WExitStatus(mover_status), 0);
  for (const Pid pid : statters) {
    const int status = kernel->HostWaitPid(pid);
    EXPECT_TRUE(WifExited(status));
    EXPECT_EQ(WExitStatus(status), 0);
  }
  EXPECT_EQ(FileContents(*kernel, "/dir/a"), "payload");  // even rename count
  EXPECT_EQ(FileContents(*kernel, "/dir/b"), "<missing>");
}

// A fork/exit storm runs while the host thread takes SyscallStats /
// TotalSyscallCount / CacheStats snapshots as fast as it can. Snapshots
// during the storm only need to be safe (TSan's concern) and monotonic;
// after quiescing, the counters must be exact.
TEST(ConcurrencyStress, ForkExitStormVsStatsSnapshots) {
  auto kernel = test::MakeWorld();
  constexpr int kForks = 250;
  std::atomic<bool> done{false};

  SpawnOptions options;
  options.body = [&done](ProcessContext& ctx) {
    int failures = 0;
    for (int i = 0; i < kForks; ++i) {
      const Pid child = ctx.Fork([](ProcessContext&) { return 0; });
      if (child < 0) {
        ++failures;
        continue;
      }
      int status = 0;
      if (ctx.Wait(&status) < 0) {
        ++failures;
      }
    }
    done.store(true, std::memory_order_release);
    return failures;
  };
  // Snapshot BEFORE the spawn: the storm body starts concurrently the moment
  // Spawn returns, so a snapshot taken after it races the first forks and the
  // exact-delta checks below undercount.
  const auto before = kernel->SyscallStats();
  int64_t last_total = kernel->TotalSyscallCount();
  const Pid pid = kernel->Spawn(options);

  int64_t snapshots = 0;
  while (!done.load(std::memory_order_acquire)) {
    const auto mid = kernel->SyscallStats();
    const int64_t total = kernel->TotalSyscallCount();
    EXPECT_GE(total, last_total) << "TotalSyscallCount went backwards mid-storm";
    EXPECT_GE(mid[kSysFork].calls, before[kSysFork].calls);
    (void)kernel->CacheStats();
    (void)kernel->LiveProcessCount();
    last_total = total;
    ++snapshots;
  }
  const int status = kernel->HostWaitPid(pid);
  ASSERT_TRUE(WifExited(status));
  EXPECT_EQ(WExitStatus(status), 0);
  EXPECT_GT(snapshots, 0);

  // Quiesced: every relaxed counter store is ordered before this read by the
  // thread joins above, so the arithmetic is exact.
  const auto after = kernel->SyscallStats();
  EXPECT_EQ(after[kSysFork].calls - before[kSysFork].calls, kForks);
  EXPECT_EQ(after[kSysWait4].calls - before[kSysWait4].calls, kForks);
  EXPECT_EQ(after[kSysExit].calls - before[kSysExit].calls, kForks + 1);
  int64_t summed = 0;
  for (int n = 0; n < kMaxSyscall; ++n) {
    summed += after[n].calls;
  }
  EXPECT_EQ(summed, kernel->TotalSyscallCount());
}

// The contract behind kPerProcess: those rows must complete while another
// process sleeps inside the kernel. Process A parks in wait4 (its child is
// parked in sigpause); process B then runs a burst of kPerProcess calls to
// completion. Under the old single-lock dispatcher this still worked only
// because cv_.wait dropped mu_; here the assertion is stronger — B finishes
// its whole burst while A has demonstrably not returned, and on a
// TSan/1-core host any accidental dependence on the big lock shows up as a
// hang (ctest's timeout) rather than a flake.
TEST(ConcurrencyStress, PerProcessCallsCompleteWhileAnotherProcessSleepsInWait4) {
  auto kernel = test::MakeWorld();
  std::atomic<Pid> child_pid{0};
  std::atomic<bool> a_returned{false};

  SpawnOptions a_options;
  a_options.body = [&child_pid, &a_returned](ProcessContext& ctx) {
    const Pid child = ctx.Fork([](ProcessContext& child_ctx) {
      child_ctx.Sigpause(0);  // parks until a signal arrives
      return 0;
    });
    child_pid.store(child, std::memory_order_release);
    int status = 0;
    const Pid reaped = ctx.Wait(&status);  // parks in wait4 until the child dies
    a_returned.store(true, std::memory_order_release);
    return reaped == child ? 0 : 1;
  };
  const Pid a = kernel->Spawn(a_options);
  while (child_pid.load(std::memory_order_acquire) == 0) {
    // spin: A has not forked yet
  }

  // B: a pure kPerProcess burst. If any of these rows needed the big lock
  // while a sleeper interacts with it, this would stall; instead it must run
  // to completion while A is still parked.
  const int b_exit = ExitCodeOf(*kernel, [](ProcessContext& ctx) {
    Rusage ru;
    TimeVal tv;
    for (int i = 0; i < 20000; ++i) {
      if (ctx.Getpid() <= 0) {
        return 1;
      }
      ctx.Gettimeofday(&tv, nullptr);
      ctx.Sigblock(0);
      ctx.Getrusage(kRusageSelf, &ru);
    }
    return 0;
  });
  EXPECT_EQ(b_exit, 0);
  EXPECT_FALSE(a_returned.load(std::memory_order_acquire))
      << "A returned from wait4 before its sleeping child was signaled";

  // Release the sleepers: a third process signals A's child.
  const Pid target = child_pid.load(std::memory_order_acquire);
  EXPECT_EQ(ExitCodeOf(*kernel,
                       [target](ProcessContext& ctx) {
                         return ctx.Kill(target, kSigTerm) == 0 ? 0 : 1;
                       }),
            0);
  const int a_status = kernel->HostWaitPid(a);
  ASSERT_TRUE(WifExited(a_status));
  EXPECT_EQ(WExitStatus(a_status), 0);
  EXPECT_TRUE(a_returned.load(std::memory_order_acquire));
}

// Many clients pound the kVfsRead lane (stat/open/read/close) against one
// shared tree while a mutator churns a sibling directory under the exclusive
// lock. Mixed shared/exclusive tree traffic is where a reader/writer bug
// would corrupt a walk; every client must see fully consistent files.
TEST(ConcurrencyStress, SharedTreeReadersVsExclusiveMutator) {
  auto kernel = test::MakeWorld();
  kernel->fs().MkdirAll("/hot");
  kernel->fs().MkdirAll("/churn");
  for (int f = 0; f < 4; ++f) {
    kernel->fs().InstallFile("/hot/f" + std::to_string(f), std::string(256, 'h'));
  }

  std::vector<Pid> pids;
  for (int r = 0; r < 3; ++r) {
    SpawnOptions options;
    options.body = [](ProcessContext& ctx) {
      char buf[256];
      Stat st;
      for (int i = 0; i < 2000; ++i) {
        const std::string path = "/hot/f" + std::to_string(i % 4);
        if (ctx.Stat(path, &st) != 0 || st.st_size != 256) {
          return 1;
        }
        const int fd = ctx.Open(path, kORdonly);
        if (fd < 0) {
          return 2;
        }
        if (ctx.Read(fd, buf, sizeof buf) != 256 || buf[0] != 'h' || buf[255] != 'h') {
          return 3;
        }
        if (ctx.Close(fd) != 0) {
          return 4;
        }
      }
      return 0;
    };
    pids.push_back(kernel->Spawn(options));
  }
  SpawnOptions mutator_options;
  mutator_options.body = [](ProcessContext& ctx) {
    for (int i = 0; i < 1000; ++i) {
      const std::string name = "/churn/t" + std::to_string(i % 13);
      const int fd = ctx.Open(name, kOCreat | kOWronly, 0644);
      if (fd < 0) {
        return 1;
      }
      if (ctx.Write(fd, "wwww", 4) != 4 || ctx.Close(fd) != 0) {
        return 2;
      }
      if (i % 3 == 0 && ctx.Unlink(name) != 0) {
        return 3;
      }
    }
    return 0;
  };
  pids.push_back(kernel->Spawn(mutator_options));

  for (const Pid pid : pids) {
    const int status = kernel->HostWaitPid(pid);
    EXPECT_TRUE(WifExited(status));
    EXPECT_EQ(WExitStatus(status), 0);
  }
}

}  // namespace
}  // namespace ia
