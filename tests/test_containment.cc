// The agent fault-containment plane (containment.h, DESIGN.md §12): per-frame
// traps, completion validation, call budgets, the circuit breaker, quarantine,
// and half-open reinstatement.
#include "tests/test_helpers.h"

#include <thread>

#include "src/agents/faulty.h"
#include "src/agents/monitor.h"
#include "src/kernel/containment.h"
#include "src/kernel/faultplan.h"
#include "src/kernel/ktrace.h"

namespace ia {
namespace {

using test::ExitCodeOf;
using test::MakeWorld;
using test::RunBody;
using test::RunBodyUnder;

// ---------------------------------------------------------------------------
// The misbehaving fixture: one agent, several failure modes.
// ---------------------------------------------------------------------------

class GrenadeAgent final : public Agent {
 public:
  enum class Mode {
    kBehave,         // transparent pass-through
    kThrow,          // throw a C++ exception out of the handler
    kBadErrno,       // return an errno far outside the table
    kLongTransfer,   // claim more bytes than the caller asked for
    kShortTransfer,  // a legitimate short count (must NOT be flagged)
    kOverrun,        // spin in down-calls until the budget watchdog fires
  };

  explicit GrenadeAgent(Mode mode) : mode_(mode) {}

  std::string name() const override { return "grenade"; }

  void Init(ProcessContext& ctx, AgentBinding& binding) override {
    (void)ctx;
    binding.InterceptSyscall(kSysStat);
    binding.InterceptSyscall(kSysRead);
  }

  // Tight knobs so every test trips (or probes) in a handful of calls.
  ContainmentPolicy containment_policy() const override {
    ContainmentPolicy policy;
    policy.trip_streak = 3;
    policy.half_open_probes = 2;
    policy.max_downcalls_per_call = 8;
    return policy;
  }

  SyscallStatus OnSyscall(AgentCall& call) override {
    hits.fetch_add(1, std::memory_order_relaxed);
    if (!armed.load(std::memory_order_relaxed)) {
      return call.CallDown();
    }
    switch (mode_) {
      case Mode::kBehave:
        break;
      case Mode::kThrow:
        throw std::runtime_error("grenade: boom");
      case Mode::kBadErrno:
        return -4242;  // far beyond kMaxPlausibleErrno
      case Mode::kLongTransfer:
        if (call.number() == kSysRead && call.rv() != nullptr) {
          const int64_t want = call.args().Long(2);
          call.rv()->rv[0] = want + 4097;
          return static_cast<SyscallStatus>(want + 4097);
        }
        break;
      case Mode::kShortTransfer:
        if (call.number() == kSysRead && call.rv() != nullptr) {
          const SyscallStatus status = call.CallDown();
          if (status > 2) {
            call.rv()->rv[0] = 2;  // short but plausible: an agent may clamp
            return 2;
          }
          return status;
        }
        break;
      case Mode::kOverrun: {
        // The frame budget is 8 down-calls; the watchdog must interrupt this
        // spin long before 100 iterations.
        SyscallArgs args;
        SyscallResult rv;
        for (int i = 0; i < 100; ++i) {
          call.Call(kSysGetpid, args, &rv);
        }
        break;
      }
    }
    return call.CallDown();
  }

  std::atomic<int64_t> hits{0};
  std::atomic<bool> armed{true};

 private:
  Mode mode_;
};

// The grenade's health record in the calling process's emulation stack.
std::shared_ptr<FrameHealth> GrenadeHealth(ProcessContext& ctx) {
  EmulationStack& stack = ctx.emulation();
  for (int i = 0; i < stack.Depth(); ++i) {
    const auto& health = stack.At(i).health;
    if (health != nullptr && health->agent == "grenade") {
      return health;
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// The decision function.
// ---------------------------------------------------------------------------

TEST(Containment, DecideAgentFaultIsDeterministic) {
  FaultPlan plan;
  plan.seed = 0x1993;
  plan.agent_throw_probability = 0.3;
  plan.agent_garble_probability = 0.2;
  plan.agent_overrun_probability = 0.1;
  int fired = 0;
  for (uint64_t seq = 0; seq < 200; ++seq) {
    const AgentFaultAction first = DecideAgentFault(plan, /*stream=*/7, /*frame=*/2, seq);
    const AgentFaultAction again = DecideAgentFault(plan, 7, 2, seq);
    EXPECT_EQ(first, again) << "seq " << seq;
    if (first != AgentFaultAction::kNone) {
      ++fired;
    }
  }
  EXPECT_GT(fired, 0);
  // Streams, frames, and seeds all decorrelate the decision sequence.
  bool diverged = false;
  for (uint64_t seq = 0; seq < 200 && !diverged; ++seq) {
    diverged = DecideAgentFault(plan, 8, 2, seq) != DecideAgentFault(plan, 7, 2, seq);
  }
  EXPECT_TRUE(diverged);
}

TEST(Containment, DecideAgentFaultAllZeroNeverFires) {
  FaultPlan plan;
  plan.seed = 0x1993;
  for (uint64_t seq = 0; seq < 500; ++seq) {
    EXPECT_EQ(DecideAgentFault(plan, 1, 0, seq), AgentFaultAction::kNone);
  }
  // Agent knobs alone must not arm the kernel injector's slow paths.
  plan.agent_throw_probability = 1.0;
  EXPECT_FALSE(plan.ActiveAnywhere());
}

// ---------------------------------------------------------------------------
// Per-frame traps: each failure kind is contained and the call re-issued.
// ---------------------------------------------------------------------------

TEST(Containment, HandlerExceptionContainedAndReissued) {
  auto kernel = MakeWorld();
  auto grenade = std::make_shared<GrenadeAgent>(GrenadeAgent::Mode::kThrow);
  grenade->armed = false;  // first call behaves so the breaker never trips here
  const int status = RunBodyUnder(*kernel, {grenade}, [&](ProcessContext& ctx) {
    ctx.WriteWholeFile("/tmp/f", "hello");
    grenade->armed = true;
    ia::Stat st{};
    if (ctx.Stat("/tmp/f", &st) != 0 || st.st_size != 5) {
      return 1;  // the throw must be invisible: contained, then re-issued below
    }
    const auto health = GrenadeHealth(ctx);
    if (health == nullptr || health->traps.load() < 1) {
      return 2;
    }
    return 0;
  });
  EXPECT_EQ(WExitStatus(status), 0);
  EXPECT_GE(kernel->ContainmentStats().traps, 1);
}

TEST(Containment, GarbledErrnoContainedAndReissued) {
  auto kernel = MakeWorld();
  auto grenade = std::make_shared<GrenadeAgent>(GrenadeAgent::Mode::kBadErrno);
  const int status = RunBodyUnder(*kernel, {grenade}, [&](ProcessContext& ctx) {
    ctx.WriteWholeFile("/tmp/f", "hello");
    ia::Stat st{};
    if (ctx.Stat("/tmp/f", &st) != 0) {
      return 1;  // -4242 is not a plausible completion; the real stat shows through
    }
    const auto health = GrenadeHealth(ctx);
    return (health != nullptr && health->garbled.load() >= 1) ? 0 : 2;
  });
  EXPECT_EQ(WExitStatus(status), 0);
  EXPECT_GE(kernel->ContainmentStats().garbled, 1);
}

TEST(Containment, GarbledTransferLengthContainedAndReissued) {
  auto kernel = MakeWorld();
  auto grenade = std::make_shared<GrenadeAgent>(GrenadeAgent::Mode::kLongTransfer);
  const int status = RunBodyUnder(*kernel, {grenade}, [&](ProcessContext& ctx) {
    ctx.WriteWholeFile("/tmp/f", "hello");
    const int fd = ctx.Open("/tmp/f", kORdonly);
    char buf[64] = {};
    const int64_t n = ctx.Read(fd, buf, sizeof buf);
    ctx.Close(fd);
    if (n != 5 || std::string(buf, 5) != "hello") {
      return 1;  // claiming want+4097 bytes is garbled; the real read shows through
    }
    const auto health = GrenadeHealth(ctx);
    return (health != nullptr && health->garbled.load() >= 1) ? 0 : 2;
  });
  EXPECT_EQ(WExitStatus(status), 0);
  EXPECT_GE(kernel->ContainmentStats().garbled, 1);
}

TEST(Containment, LegitimateShortTransferIsNotFlagged) {
  auto kernel = MakeWorld();
  auto grenade = std::make_shared<GrenadeAgent>(GrenadeAgent::Mode::kShortTransfer);
  const int status = RunBodyUnder(*kernel, {grenade}, [&](ProcessContext& ctx) {
    ctx.WriteWholeFile("/tmp/f", "hello");
    const int fd = ctx.Open("/tmp/f", kORdonly);
    char buf[64] = {};
    const int64_t n = ctx.Read(fd, buf, sizeof buf);
    ctx.Close(fd);
    if (n != 2) {
      return 1;  // a clamped-but-plausible count is the agent's prerogative
    }
    const auto health = GrenadeHealth(ctx);
    return (health != nullptr && health->garbled.load() == 0 && health->traps.load() == 0)
               ? 0
               : 2;
  });
  EXPECT_EQ(WExitStatus(status), 0);
  EXPECT_EQ(kernel->ContainmentStats().garbled, 0);
}

TEST(Containment, DowncallBudgetOverrunContainedAndReissued) {
  auto kernel = MakeWorld();
  auto grenade = std::make_shared<GrenadeAgent>(GrenadeAgent::Mode::kOverrun);
  const int status = RunBodyUnder(*kernel, {grenade}, [&](ProcessContext& ctx) {
    ctx.WriteWholeFile("/tmp/f", "hello");
    ia::Stat st{};
    if (ctx.Stat("/tmp/f", &st) != 0 || st.st_size != 5) {
      return 1;  // the watchdog interrupts the spin; the stat still completes
    }
    const auto health = GrenadeHealth(ctx);
    return (health != nullptr && health->overruns.load() >= 1) ? 0 : 2;
  });
  EXPECT_EQ(WExitStatus(status), 0);
  EXPECT_GE(kernel->ContainmentStats().overruns, 1);
}

// ---------------------------------------------------------------------------
// The circuit breaker: trip, quarantine, surfacing, recovery.
// ---------------------------------------------------------------------------

TEST(Containment, BreakerTripQuarantinesTheFrame) {
  auto kernel = MakeWorld();
  RingKtraceSink slice(128);
  kernel->SetKtraceSlot(1, &slice, kProcess);
  auto grenade = std::make_shared<GrenadeAgent>(GrenadeAgent::Mode::kThrow);
  const int status = RunBodyUnder(*kernel, {grenade}, [&](ProcessContext& ctx) {
    ctx.WriteWholeFile("/tmp/f", "hello");
    ia::Stat st{};
    for (int i = 0; i < 10; ++i) {
      if (ctx.Stat("/tmp/f", &st) != 0) {
        return 1;  // every call must succeed, before and after the trip
      }
    }
    const auto health = GrenadeHealth(ctx);
    if (health == nullptr || health->State() != BreakerState::kOpen) {
      return 2;
    }
    // trip_streak == 3: the agent saw exactly three calls, then the quarantine
    // re-narrow routed the remaining seven around the frame.
    return grenade->hits.load() == 3 ? 0 : 3;
  });
  EXPECT_EQ(WExitStatus(status), 0);
  const AgentContainmentStats stats = kernel->ContainmentStats();
  EXPECT_GE(stats.traps, 3);
  EXPECT_EQ(stats.quarantines, 1);
  int quarantined_records = 0;
  for (const KtraceRecord& record : slice.Snapshot()) {
    if (record.kind == KtraceEventKind::kAgentQuarantined) {
      ++quarantined_records;
      EXPECT_EQ(record.path, "grenade");
    }
  }
  EXPECT_EQ(quarantined_records, 1);
  kernel->SetKtraceSlot(1, nullptr, 0);
}

TEST(Containment, QuarantinePreservesForkPropagation) {
  // Quarantine is per-process: the parent's tripped frame keeps its fork
  // bookkeeping rows, so the child still re-installs the agent — with a fresh
  // breaker that trips on its own.
  auto kernel = MakeWorld();
  auto grenade = std::make_shared<GrenadeAgent>(GrenadeAgent::Mode::kThrow);
  const int status = RunBodyUnder(*kernel, {grenade}, [&](ProcessContext& ctx) {
    ctx.WriteWholeFile("/tmp/f", "hello");
    ia::Stat st{};
    for (int i = 0; i < 5; ++i) {
      if (ctx.Stat("/tmp/f", &st) != 0) {
        return 1;
      }
    }
    const auto parent_health = GrenadeHealth(ctx);
    if (parent_health == nullptr || parent_health->State() != BreakerState::kOpen) {
      return 2;
    }
    const Pid child = ctx.Fork([](ProcessContext& child_ctx) {
      const auto child_health = GrenadeHealth(child_ctx);
      if (child_health == nullptr || child_health->State() != BreakerState::kClosed) {
        return 10;  // fresh frame, fresh breaker
      }
      ia::Stat child_st{};
      for (int i = 0; i < 5; ++i) {
        if (child_ctx.Stat("/tmp/f", &child_st) != 0) {
          return 11;
        }
      }
      return child_health->State() == BreakerState::kOpen ? 0 : 12;
    });
    if (child <= 0) {
      return 3;
    }
    int child_status = 0;
    ctx.Wait(&child_status);
    return WExitStatus(child_status);
  });
  EXPECT_EQ(WExitStatus(status), 0);
  EXPECT_EQ(kernel->ContainmentStats().quarantines, 2);
}

TEST(Containment, ReinstateRecoversThroughHalfOpen) {
  auto kernel = MakeWorld();
  auto grenade = std::make_shared<GrenadeAgent>(GrenadeAgent::Mode::kThrow);
  const int status = RunBodyUnder(*kernel, {grenade}, [&](ProcessContext& ctx) {
    ctx.WriteWholeFile("/tmp/f", "hello");
    ia::Stat st{};
    for (int i = 0; i < 5; ++i) {
      ctx.Stat("/tmp/f", &st);
    }
    const auto health = GrenadeHealth(ctx);
    if (health == nullptr || health->State() != BreakerState::kOpen) {
      return 1;
    }
    grenade->armed = false;  // "the operator fixed the agent"
    if (!AgentHost::Reinstate(ctx, grenade.get())) {
      return 2;
    }
    if (health->State() != BreakerState::kHalfOpen) {
      return 3;
    }
    const int64_t hits_before = grenade->hits.load();
    // policy.half_open_probes == 2 clean calls close the breaker for good.
    for (int i = 0; i < 2; ++i) {
      if (ctx.Stat("/tmp/f", &st) != 0) {
        return 4;
      }
    }
    if (health->State() != BreakerState::kClosed) {
      return 5;
    }
    return grenade->hits.load() == hits_before + 2 ? 0 : 6;
  });
  EXPECT_EQ(WExitStatus(status), 0);
  const AgentContainmentStats stats = kernel->ContainmentStats();
  EXPECT_EQ(stats.reinstates, 1);
  EXPECT_EQ(stats.half_open_retrips, 0);
}

TEST(Containment, HalfOpenProbeFailureRetripsInstantly) {
  auto kernel = MakeWorld();
  auto grenade = std::make_shared<GrenadeAgent>(GrenadeAgent::Mode::kThrow);
  const int status = RunBodyUnder(*kernel, {grenade}, [&](ProcessContext& ctx) {
    ctx.WriteWholeFile("/tmp/f", "hello");
    ia::Stat st{};
    for (int i = 0; i < 5; ++i) {
      ctx.Stat("/tmp/f", &st);
    }
    const auto health = GrenadeHealth(ctx);
    if (health == nullptr || health->State() != BreakerState::kOpen) {
      return 1;
    }
    // Reinstate WITHOUT fixing the agent: one probe failure re-trips, no
    // three-strike grace this time.
    if (!AgentHost::Reinstate(ctx, grenade.get())) {
      return 2;
    }
    const int64_t hits_before = grenade->hits.load();
    if (ctx.Stat("/tmp/f", &st) != 0) {
      return 3;  // the probe failure itself is still contained
    }
    if (health->State() != BreakerState::kOpen) {
      return 4;
    }
    return grenade->hits.load() == hits_before + 1 ? 0 : 5;
  });
  EXPECT_EQ(WExitStatus(status), 0);
  const AgentContainmentStats stats = kernel->ContainmentStats();
  EXPECT_EQ(stats.quarantines, 2);
  EXPECT_EQ(stats.half_open_retrips, 1);
  EXPECT_EQ(stats.reinstates, 1);
}

// ---------------------------------------------------------------------------
// Surfacing: the monitor report and the health snapshots.
// ---------------------------------------------------------------------------

TEST(Containment, MonitorReportShowsFrameHealthAndContainmentLine) {
  auto kernel = MakeWorld();
  auto grenade = std::make_shared<GrenadeAgent>(GrenadeAgent::Mode::kThrow);
  std::string report;
  const int status = RunBodyUnder(*kernel, {grenade}, [&](ProcessContext& ctx) {
    ctx.WriteWholeFile("/tmp/f", "hello");
    ia::Stat st{};
    for (int i = 0; i < 5; ++i) {
      ctx.Stat("/tmp/f", &st);
    }
    // Snapshot while the frame is alive: the registry holds weak references.
    report = MonitorAgent::FormatKernelReport(ctx.kernel());
    bool found = false;
    for (const FrameHealthSnapshot& snap : ctx.kernel().FrameHealthSnapshots()) {
      if (snap.agent == "grenade") {
        found = snap.state == BreakerState::kOpen && snap.traps >= 3 && snap.trips == 1;
      }
    }
    return found ? 0 : 1;
  });
  EXPECT_EQ(WExitStatus(status), 0);
  EXPECT_NE(report.find("agent frame health"), std::string::npos);
  EXPECT_NE(report.find("grenade"), std::string::npos);
  EXPECT_NE(report.find("open"), std::string::npos);
  EXPECT_NE(report.find("containment:"), std::string::npos);
  EXPECT_NE(report.find("quarantine(s)"), std::string::npos);
}

TEST(Containment, AgentHealthProgramPrintsCounters) {
  auto kernel = MakeWorld();
  auto grenade = std::make_shared<GrenadeAgent>(GrenadeAgent::Mode::kThrow);
  std::string out;
  const int status = RunBodyUnder(*kernel, {grenade}, [&](ProcessContext& ctx) {
    ctx.WriteWholeFile("/tmp/f", "hello");
    ia::Stat st{};
    for (int i = 0; i < 5; ++i) {
      ctx.Stat("/tmp/f", &st);
    }
    const int fd = ctx.Open("/tmp/health.out", kOWronly | kOCreat | kOTrunc);
    if (fd < 0) {
      return 1;
    }
    const Pid child = ctx.Fork([fd](ProcessContext& child_ctx) {
      child_ctx.Dup2(fd, 1);
      return child_ctx.Execve("/usr/bin/agent_health", {"agent_health"});
    });
    if (child <= 0) {
      return 2;
    }
    int child_status = 0;
    ctx.Wait(&child_status);
    ctx.Close(fd);
    return WExitStatus(child_status);
  });
  EXPECT_EQ(WExitStatus(status), 0);
  out = test::FileContents(*kernel, "/tmp/health.out");
  EXPECT_NE(out.find("containment:"), std::string::npos);
  EXPECT_NE(out.find("quarantine(s)"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Concurrency: breakers tripping across many clients at once.
// ---------------------------------------------------------------------------

TEST(Containment, ConcurrentClientsTripIndependently) {
  // Eight clients under the same always-throwing FaultyAgent instance; each
  // process gets its own frame, health record, and breaker. A host-side
  // observer polls the snapshots while the breakers trip (the TSan leg of
  // check_sanitize.sh runs this too).
  auto kernel = MakeWorld();
  FaultPlan plan;
  plan.seed = 0x1993;
  plan.agent_throw_probability = 1.0;
  auto faulty = std::make_shared<FaultyAgent>(plan);
  kernel->fs().InstallFile("/shared.dat", "payload");
  constexpr int kClients = 8;
  std::vector<Pid> pids;
  for (int c = 0; c < kClients; ++c) {
    SpawnOptions options;
    options.body = [](ProcessContext& ctx) {
      ia::Stat st{};
      for (int i = 0; i < 20; ++i) {
        if (ctx.Stat("/shared.dat", &st) != 0 || st.st_size != 7) {
          return 1;
        }
      }
      return 0;
    };
    const Pid pid = SpawnUnderAgents(*kernel, {faulty}, options);
    ASSERT_GT(pid, 0);
    pids.push_back(pid);
  }
  std::atomic<bool> done{false};
  std::thread observer([&kernel, &done]() {
    int64_t peak = 0;
    while (!done.load(std::memory_order_acquire)) {
      for (const FrameHealthSnapshot& snap : kernel->FrameHealthSnapshots()) {
        peak = std::max(peak, snap.traps);
      }
      (void)kernel->ContainmentStats();
      std::this_thread::yield();
    }
    EXPECT_GE(peak, 0);
  });
  for (const Pid pid : pids) {
    const int status = kernel->HostWaitPid(pid);
    EXPECT_TRUE(WifExited(status));
    EXPECT_EQ(WExitStatus(status), 0);
  }
  done.store(true, std::memory_order_release);
  observer.join();
  // Every client's breaker tripped (trip_streak default 3 < 20 calls).
  EXPECT_EQ(kernel->ContainmentStats().quarantines, kClients);
  EXPECT_GE(kernel->ContainmentStats().traps, kClients * 3);
}

// ---------------------------------------------------------------------------
// The contained ring path: agent-routed entries under a tripping breaker.
// ---------------------------------------------------------------------------

TEST(Containment, RingEntriesSurviveBreakerTrip) {
  auto kernel = MakeWorld();
  auto grenade = std::make_shared<GrenadeAgent>(GrenadeAgent::Mode::kThrow);
  const int status = RunBodyUnder(*kernel, {grenade}, [&](ProcessContext& ctx) {
    ctx.WriteWholeFile("/tmp/f", "hello");
    ia::Stat st[8] = {};
    SyscallRequest reqs[8];
    for (uint64_t i = 0; i < 8; ++i) {
      reqs[i].number = kSysStat;
      reqs[i].user_data = i;
      reqs[i].args.SetPtr(0, "/tmp/f");
      reqs[i].args.SetPtr(1, &st[i]);
    }
    ctx.Ring(8);
    if (ctx.SubmitBatch(reqs, 8) != 8 || ctx.DrainRing() != 8) {
      return 1;
    }
    SyscallCompletion comps[8];
    if (ctx.ReapBatch(comps, 8) != 8) {
      return 2;
    }
    for (uint64_t i = 0; i < 8; ++i) {
      if (comps[i].user_data != i || comps[i].status != 0 || st[i].st_size != 5) {
        return 3;  // contained mid-drain: every completion is still real
      }
    }
    const auto health = GrenadeHealth(ctx);
    return (health != nullptr && health->State() == BreakerState::kOpen) ? 0 : 4;
  });
  EXPECT_EQ(WExitStatus(status), 0);
  EXPECT_EQ(kernel->ContainmentStats().quarantines, 1);
}

}  // namespace
}  // namespace ia
