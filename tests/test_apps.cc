// Tests for the simulated application programs (coreutils, shell, build tools).
#include "tests/test_helpers.h"

#include "src/base/strings.h"

namespace ia {
namespace {

using test::FileContents;
using test::MakeWorld;

int RunProg(Kernel& kernel, const std::string& prog_path, const std::vector<std::string>& argv,
        const std::string& cwd = "/") {
  SpawnOptions options;
  options.path = prog_path;
  options.argv = argv;
  options.cwd = cwd;
  const Pid pid = kernel.Spawn(options);
  EXPECT_GT(pid, 0) << prog_path;
  return kernel.HostWaitPid(pid);
}

std::string Console(Kernel& kernel) {
  std::string out = kernel.console().transcript();
  kernel.console().ClearTranscript();
  return out;
}

TEST(Coreutils, Echo) {
  auto kernel = MakeWorld();
  RunProg(*kernel, "/bin/echo", {"echo", "one", "two"});
  EXPECT_EQ(Console(*kernel), "one two\n");
  RunProg(*kernel, "/bin/echo", {"echo"});
  EXPECT_EQ(Console(*kernel), "\n");
}

TEST(Coreutils, CatConcatenatesAndReportsErrors) {
  auto kernel = MakeWorld();
  kernel->fs().InstallFile("/a", "AAA");
  kernel->fs().InstallFile("/b", "BBB");
  EXPECT_EQ(WExitStatus(RunProg(*kernel, "/bin/cat", {"cat", "/a", "/b"})), 0);
  EXPECT_EQ(Console(*kernel), "AAABBB");
  EXPECT_EQ(WExitStatus(RunProg(*kernel, "/bin/cat", {"cat", "/missing"})), 1);
  EXPECT_NE(Console(*kernel).find("ENOENT"), std::string::npos);
}

TEST(Coreutils, CpPreservesMode) {
  auto kernel = MakeWorld();
  kernel->fs().InstallFile("/src.sh", "#!/bin/sh\n", 0755);
  EXPECT_EQ(WExitStatus(RunProg(*kernel, "/bin/cp", {"cp", "/src.sh", "/dst.sh"})), 0);
  EXPECT_EQ(FileContents(*kernel, "/dst.sh"), "#!/bin/sh\n");
  Cred root;
  NameiEnv env{kernel->fs().root(), kernel->fs().root(), &root};
  NameiResult nr;
  ASSERT_EQ(kernel->fs().Namei(env, "/dst.sh", NameiOp::kLookup, true, &nr), 0);
  EXPECT_EQ(nr.inode->mode_bits & 0777, 0755u);
}

TEST(Coreutils, MvRmLn) {
  auto kernel = MakeWorld();
  kernel->fs().InstallFile("/f1", "data");
  EXPECT_EQ(WExitStatus(RunProg(*kernel, "/bin/mv", {"mv", "/f1", "/f2"})), 0);
  EXPECT_EQ(FileContents(*kernel, "/f1"), "<missing>");
  EXPECT_EQ(WExitStatus(RunProg(*kernel, "/bin/ln", {"ln", "/f2", "/f3"})), 0);
  EXPECT_EQ(FileContents(*kernel, "/f3"), "data");
  EXPECT_EQ(WExitStatus(RunProg(*kernel, "/bin/ln", {"ln", "-s", "/f2", "/sym"})), 0);
  EXPECT_EQ(WExitStatus(RunProg(*kernel, "/bin/rm", {"rm", "/f2", "/f3"})), 0);
  EXPECT_EQ(FileContents(*kernel, "/f2"), "<missing>");
}

TEST(Coreutils, WcCountsLinesWordsBytes) {
  auto kernel = MakeWorld();
  kernel->fs().InstallFile("/text", "one two\nthree\n");
  RunProg(*kernel, "/bin/wc", {"wc", "/text"});
  const std::string out = Console(*kernel);
  EXPECT_NE(out.find("2"), std::string::npos);   // lines
  EXPECT_NE(out.find("3"), std::string::npos);   // words
  EXPECT_NE(out.find("14"), std::string::npos);  // bytes
}

TEST(Coreutils, GrepFindsAndSetsStatus) {
  auto kernel = MakeWorld();
  kernel->fs().InstallFile("/hay", "needle in here\nnothing\n");
  EXPECT_EQ(WExitStatus(RunProg(*kernel, "/bin/grep", {"grep", "needle", "/hay"})), 0);
  EXPECT_NE(Console(*kernel).find("needle in here"), std::string::npos);
  EXPECT_EQ(WExitStatus(RunProg(*kernel, "/bin/grep", {"grep", "absent", "/hay"})), 1);
}

TEST(Coreutils, HeadLimitsLines) {
  auto kernel = MakeWorld();
  kernel->fs().InstallFile("/ten", "1\n2\n3\n4\n5\n6\n7\n8\n9\n10\n");
  RunProg(*kernel, "/bin/head", {"head", "-n", "3", "/ten"});
  EXPECT_EQ(Console(*kernel), "1\n2\n3\n");
}

TEST(Coreutils, LsSortsAndHidesDots) {
  auto kernel = MakeWorld();
  kernel->fs().InstallFile("/d/zebra", "");
  kernel->fs().InstallFile("/d/apple", "");
  RunProg(*kernel, "/bin/ls", {"ls", "/d"});
  EXPECT_EQ(Console(*kernel), "apple\nzebra\n");
}

TEST(Coreutils, PwdTrueFalseDateHostname) {
  auto kernel = MakeWorld();
  kernel->fs().MkdirAll("/work/here");
  EXPECT_EQ(WExitStatus(RunProg(*kernel, "/bin/pwd", {"pwd"}, "/work/here")), 0);
  EXPECT_EQ(Console(*kernel), "/work/here\n");
  EXPECT_EQ(WExitStatus(RunProg(*kernel, "/bin/true", {"true"})), 0);
  EXPECT_EQ(WExitStatus(RunProg(*kernel, "/bin/false", {"false"})), 1);
  RunProg(*kernel, "/bin/hostname", {"hostname"});
  EXPECT_EQ(Console(*kernel), "vax6250\n");
  RunProg(*kernel, "/bin/date", {"date"});
  EXPECT_NE(Console(*kernel).find("7258"), std::string::npos);  // 1993 epoch prefix
}

TEST(Shell, ExitStatusAndSequencing) {
  auto kernel = MakeWorld();
  EXPECT_EQ(WExitStatus(RunProg(*kernel, "/bin/sh", {"sh", "-c", "false"})), 1);
  EXPECT_EQ(WExitStatus(RunProg(*kernel, "/bin/sh", {"sh", "-c", "false; true"})), 0);
  EXPECT_EQ(WExitStatus(RunProg(*kernel, "/bin/sh", {"sh", "-c", "exit 7"})), 7);
  EXPECT_EQ(WExitStatus(RunProg(*kernel, "/bin/sh", {"sh", "-c", "no_such_cmd"})), 127);
}

TEST(Shell, QuotingAndComments) {
  auto kernel = MakeWorld();
  RunProg(*kernel, "/bin/sh", {"sh", "-c", "echo \"hello   world\""});
  EXPECT_EQ(Console(*kernel), "hello   world\n");
  EXPECT_EQ(WExitStatus(RunProg(*kernel, "/bin/sh", {"sh", "-c", "# just a comment"})), 0);
}

TEST(Shell, InputRedirection) {
  auto kernel = MakeWorld();
  kernel->fs().InstallFile("/input", "from a file");
  RunProg(*kernel, "/bin/sh", {"sh", "-c", "cat < /input"});
  EXPECT_EQ(Console(*kernel), "from a file");
}

TEST(Shell, AppendRedirection) {
  auto kernel = MakeWorld();
  RunProg(*kernel, "/bin/sh", {"sh", "-c", "echo one > /tmp/log; echo two >> /tmp/log"});
  EXPECT_EQ(FileContents(*kernel, "/tmp/log"), "one\ntwo\n");
}

TEST(Shell, ThreeStagePipeline) {
  auto kernel = MakeWorld();
  kernel->fs().InstallFile("/words", "cherry\napple\nbanana apple\n");
  RunProg(*kernel, "/bin/sh",
      {"sh", "-c", "cat /words | grep apple | wc /dev/null > /tmp/count"});
  // The pipeline ran; grep found 2 lines, wc processed /dev/null (0 0 0).
  EXPECT_NE(FileContents(*kernel, "/tmp/count").find("0"), std::string::npos);
}

TEST(BuildTools, CppExpandsIncludesAndStripsComments) {
  auto kernel = MakeWorld();
  kernel->fs().InstallFile("/src/head.h", "int decl(void);");
  kernel->fs().InstallFile("/src/in.c",
                           "#include \"head.h\"\n#include <stdio.h>\n"
                           "int x; /* strip me */\n");
  EXPECT_EQ(WExitStatus(RunProg(*kernel, "/usr/bin/cpp", {"cpp", "/src/in.c", "/tmp/out.i"})),
            0);
  const std::string out = FileContents(*kernel, "/tmp/out.i");
  EXPECT_NE(out.find("int decl(void);"), std::string::npos);
  EXPECT_EQ(out.find("stdio.h"), std::string::npos);
  EXPECT_EQ(out.find("strip me"), std::string::npos);
  EXPECT_NE(out.find("int x;"), std::string::npos);
}

TEST(BuildTools, Cc1EmitsAssembly) {
  auto kernel = MakeWorld();
  kernel->fs().InstallFile("/tmp/in.i", "int f(int a) {\nreturn a;\n}\n");
  EXPECT_EQ(WExitStatus(RunProg(*kernel, "/usr/bin/cc1", {"cc1", "/tmp/in.i", "/tmp/out.s"})),
            0);
  const std::string assembly = FileContents(*kernel, "/tmp/out.s");
  EXPECT_NE(assembly.find(".text"), std::string::npos);
  EXPECT_NE(assembly.find("pushl"), std::string::npos);
  EXPECT_NE(assembly.find("ret"), std::string::npos);
}

TEST(BuildTools, AsAndLdProduceExecutable) {
  auto kernel = MakeWorld();
  kernel->fs().InstallFile("/tmp/a.s", "\t.text\n\tmovl\t$1,%eax\n\tret\n");
  EXPECT_EQ(WExitStatus(RunProg(*kernel, "/bin/as", {"as", "/tmp/a.s", "/tmp/a.o"})), 0);
  EXPECT_EQ(FileContents(*kernel, "/tmp/a.o").substr(0, 4), "OBJ1");
  EXPECT_EQ(WExitStatus(RunProg(*kernel, "/bin/ld", {"ld", "-o", "/tmp/prog", "/tmp/a.o"})), 0);
  EXPECT_EQ(FileContents(*kernel, "/tmp/prog").substr(0, 4), "EXE1");
  // The linked output is executable.
  Cred root;
  NameiEnv env{kernel->fs().root(), kernel->fs().root(), &root};
  NameiResult nr;
  ASSERT_EQ(kernel->fs().Namei(env, "/tmp/prog", NameiOp::kLookup, true, &nr), 0);
  EXPECT_NE(nr.inode->mode_bits & 0111, 0u);
}

TEST(BuildTools, CcDriverCleansTemporaries) {
  auto kernel = MakeWorld();
  const std::string dir = SetupMakeWorkload(*kernel, 1);
  EXPECT_EQ(
      WExitStatus(RunProg(*kernel, "/bin/cc", {"cc", "-o", "prog1", "prog1.c"}, dir)), 0);
  EXPECT_EQ(FileContents(*kernel, dir + "/prog1").substr(0, 4), "EXE1");
  // No /tmp/cc*.{i,s,o} left behind.
  Cred root;
  NameiEnv env{kernel->fs().root(), kernel->fs().root(), &root};
  NameiResult nr;
  ASSERT_EQ(kernel->fs().Namei(env, "/tmp", NameiOp::kLookup, true, &nr), 0);
  for (const auto& [name, child] : nr.inode->entries) {
    EXPECT_TRUE(name.rfind("cc", 0) != 0) << "leftover temp: " << name;
  }
}

TEST(BuildTools, MakeReportsMissingDependency) {
  auto kernel = MakeWorld();
  kernel->fs().InstallFile("/proj/Makefile", "target: absent.c\n");
  EXPECT_EQ(WExitStatus(RunProg(*kernel, "/bin/make", {"make"}, "/proj")), 2);
  EXPECT_NE(Console(*kernel).find("missing dependency"), std::string::npos);
}

TEST(Scribe, AuxAndLogProduced) {
  auto kernel = MakeWorld();
  SetupScribeWorkload(*kernel);
  EXPECT_EQ(WExitStatus(RunProg(*kernel, "/usr/bin/scribe",
                            {"scribe", "dissertation.mss"}, "/home/mbj")),
            0);
  const std::string log = FileContents(*kernel, "/home/mbj/dissertation.log");
  EXPECT_NE(log.find("paragraph"), std::string::npos);
  EXPECT_NE(log.find("page"), std::string::npos);
  // Pages are numbered.
  const std::string doc = FileContents(*kernel, "/home/mbj/dissertation.doc");
  EXPECT_NE(doc.find("- 1 -"), std::string::npos);
  EXPECT_NE(doc.find("- 2 -"), std::string::npos);
}

TEST(Scribe, MissingManuscriptFails) {
  auto kernel = MakeWorld();
  EXPECT_EQ(WExitStatus(RunProg(*kernel, "/usr/bin/scribe", {"scribe", "/absent.mss"})), 1);
}

}  // namespace
}  // namespace ia
