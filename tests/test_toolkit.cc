// Toolkit layer tests: interception routing, symbolic decode, descriptor and
// pathname object mechanics, directory iteration, call-down semantics.
#include "tests/test_helpers.h"

#include <atomic>

#include "src/base/strings.h"
#include "src/kernel/direntry_codec.h"
#include "src/toolkit/toolkit.h"

namespace ia {
namespace {

using test::ExitCodeOf;
using test::FileContents;
using test::MakeWorld;
using test::RunBodyUnder;

// ---------------------------------------------------------------------------
// Numeric layer.
// ---------------------------------------------------------------------------

// Records every number it sees; interest limited to a chosen set.
class RecordingAgent final : public NumericSyscall {
 public:
  explicit RecordingAgent(std::vector<int> interests) : interests_(std::move(interests)) {}

  std::string name() const override { return "recording"; }

  int64_t SeenCount(int number) {
    std::lock_guard<std::mutex> lock(mu_);
    int64_t count = 0;
    for (const int n : seen_) {
      if (n == number) {
        ++count;
      }
    }
    return count;
  }

  int64_t TotalSeen() {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int64_t>(seen_.size());
  }

 protected:
  void init(ProcessContext&) override {
    for (const int n : interests_) {
      register_interest(n);
    }
  }

  SyscallStatus syscall(AgentCall& call) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      seen_.push_back(call.number());
    }
    return call.CallDown();
  }

 private:
  std::vector<int> interests_;
  std::mutex mu_;
  std::vector<int> seen_;
};

TEST(NumericLayer, OnlyRegisteredCallsIntercepted) {
  auto kernel = MakeWorld();
  auto agent = std::make_shared<RecordingAgent>(std::vector<int>{kSysGetpid});
  const int status = RunBodyUnder(*kernel, {agent}, [](ProcessContext& ctx) {
    ctx.Getpid();
    ctx.Getpid();
    TimeVal tv;
    ctx.Gettimeofday(&tv, nullptr);  // NOT registered
    return 0;
  });
  EXPECT_EQ(WExitStatus(status), 0);
  EXPECT_EQ(agent->SeenCount(kSysGetpid), 2);
  EXPECT_EQ(agent->SeenCount(kSysGettimeofday), 0);
}

TEST(NumericLayer, ResultModificationVisibleToClient) {
  auto kernel = MakeWorld();
  // An agent that makes getpid() lie.
  class LyingAgent final : public NumericSyscall {
   public:
    std::string name() const override { return "liar"; }

   protected:
    void init(ProcessContext&) override { register_interest(kSysGetpid); }
    SyscallStatus syscall(AgentCall& call) override {
      const SyscallStatus st = call.CallDown();
      call.rv()->rv[0] = 31337;
      return st;
    }
  };
  const int status = RunBodyUnder(*kernel, {std::make_shared<LyingAgent>()},
                                  [](ProcessContext& ctx) {
                                    return ctx.Getpid() == 31337 ? 0 : 1;
                                  });
  EXPECT_EQ(WExitStatus(status), 0);
}

TEST(NumericLayer, AgentCanDenyCalls) {
  auto kernel = MakeWorld();
  class DenyUnlink final : public NumericSyscall {
   public:
    std::string name() const override { return "deny_unlink"; }

   protected:
    void init(ProcessContext&) override { register_interest(kSysUnlink); }
    SyscallStatus syscall(AgentCall&) override { return -kEPerm; }
  };
  kernel->fs().InstallFile("/tmp/protected", "keep me");
  const int status = RunBodyUnder(*kernel, {std::make_shared<DenyUnlink>()},
                                  [](ProcessContext& ctx) {
                                    return ctx.Unlink("/tmp/protected") == -kEPerm ? 0 : 1;
                                  });
  EXPECT_EQ(WExitStatus(status), 0);
  EXPECT_EQ(FileContents(*kernel, "/tmp/protected"), "keep me");
}

TEST(NumericLayer, RangeRegistration) {
  auto kernel = MakeWorld();
  auto agent = std::make_shared<RecordingAgent>(std::vector<int>{});
  // Use a custom agent with a range instead.
  class RangeAgent final : public NumericSyscall {
   public:
    std::string name() const override { return "range"; }
    std::atomic<int> hits{0};

   protected:
    void init(ProcessContext&) override {
      register_interest_range(kSysGetpid, kSysGeteuid);  // 20..25
    }
    SyscallStatus syscall(AgentCall& call) override {
      ++hits;
      return call.CallDown();
    }
  };
  auto range_agent = std::make_shared<RangeAgent>();
  RunBodyUnder(*kernel, {range_agent}, [](ProcessContext& ctx) {
    ctx.Getpid();   // 20: in range
    ctx.Getuid();   // 24: in range
    ctx.Geteuid();  // 25: in range
    ctx.Getgid();   // 47: not in range
    return 0;
  });
  EXPECT_EQ(range_agent->hits.load(), 3);
}

// ---------------------------------------------------------------------------
// Symbolic layer.
// ---------------------------------------------------------------------------

// Checks that the decoder hands each sys_* the correctly typed arguments.
class DecodeChecker final : public SymbolicSyscall {
 public:
  std::string name() const override { return "decode_checker"; }
  std::atomic<int> failures{0};
  std::atomic<int> checks{0};

 protected:
  SyscallStatus sys_open(AgentCall& call, const char* path, int flags, Mode mode) override {
    ++checks;
    if (path == nullptr || std::string(path) != "/tmp/decode" || (flags & kOCreat) == 0 ||
        mode != 0612) {
      ++failures;
    }
    return SymbolicSyscall::sys_open(call, path, flags, mode);
  }
  SyscallStatus sys_write(AgentCall& call, int fd, const void* buf, int64_t cnt) override {
    if (fd >= 3) {  // ignore stdio writes from the loader
      ++checks;
      if (buf == nullptr || cnt != 6 ||
          std::string(static_cast<const char*>(buf), 6) != "decode") {
        ++failures;
      }
    }
    return SymbolicSyscall::sys_write(call, fd, buf, cnt);
  }
  SyscallStatus sys_lseek(AgentCall& call, int fd, Off offset, int whence) override {
    ++checks;
    if (offset != -3 || whence != kSeekEnd) {
      ++failures;
    }
    return SymbolicSyscall::sys_lseek(call, fd, offset, whence);
  }
  SyscallStatus sys_kill(AgentCall& call, Pid pid, int signo) override {
    ++checks;
    if (signo != 0) {
      ++failures;
    }
    return SymbolicSyscall::sys_kill(call, pid, signo);
  }
};

TEST(SymbolicLayer, DecodePassesTypedArguments) {
  auto kernel = MakeWorld();
  auto checker = std::make_shared<DecodeChecker>();
  const int status = RunBodyUnder(*kernel, {checker}, [](ProcessContext& ctx) {
    const int fd = ctx.Open("/tmp/decode", kOCreat | kOWronly, 0612);
    ctx.Write(fd, "decode", 6);
    ctx.Lseek(fd, -3, kSeekEnd);
    ctx.Kill(ctx.Getpid(), 0);
    return 0;
  });
  EXPECT_EQ(WExitStatus(status), 0);
  EXPECT_EQ(checker->failures.load(), 0);
  EXPECT_GE(checker->checks.load(), 4);
}

TEST(SymbolicLayer, GenericHookSeesUntreatedCalls) {
  auto kernel = MakeWorld();
  class GenericCounter final : public SymbolicSyscall {
   public:
    std::string name() const override { return "generic_counter"; }
    std::atomic<int> generic_hits{0};

   protected:
    SyscallStatus sys_generic(AgentCall& call) override {
      ++generic_hits;
      return SymbolicSyscall::sys_generic(call);
    }
    SyscallStatus sys_getpid(AgentCall& call) override {
      return SymbolicSyscall::sys_getpid(call);  // treated: bypasses sys_generic? No —
      // the default of sys_getpid IS sys_generic; this override calls the base
      // default, which funnels to sys_generic. Count stays meaningful for gettimeofday.
    }
  };
  auto agent = std::make_shared<GenericCounter>();
  RunBodyUnder(*kernel, {agent}, [](ProcessContext& ctx) {
    TimeVal tv;
    ctx.Gettimeofday(&tv, nullptr);
    return 0;
  });
  EXPECT_GE(agent->generic_hits.load(), 1);
}

// ---------------------------------------------------------------------------
// Descriptor layer.
// ---------------------------------------------------------------------------

TEST(DescriptorLayer, TracksOpensDupsAndCloses) {
  auto kernel = MakeWorld();
  class TrackingSet final : public DescriptorSet {
   public:
    std::string name() const override { return "tracking"; }
  };
  auto agent = std::make_shared<TrackingSet>();
  Pid client_pid = 0;
  const int status = RunBodyUnder(*kernel, {agent}, [&](ProcessContext& ctx) {
    client_pid = ctx.Getpid();
    const int fd = ctx.Open("/etc/motd", kORdonly);
    const int d = ctx.Dup(fd);
    if (agent->TrackedCount(client_pid) < 2) {
      return 1;
    }
    ctx.Close(fd);
    ctx.Close(d);
    return 0;
  });
  EXPECT_EQ(WExitStatus(status), 0);
  EXPECT_EQ(agent->TrackedCount(client_pid), 0);
}

// A custom open object that upper-cases everything read through it.
class UppercaseObject final : public OpenObject {
 public:
  using OpenObject::OpenObject;
  SyscallStatus read(AgentCall& call, void* buf, int64_t cnt) override {
    const SyscallStatus st = OpenObject::read(call, buf, cnt);
    if (st > 0) {
      auto* chars = static_cast<char*>(buf);
      for (int64_t i = 0; i < st; ++i) {
        if (chars[i] >= 'a' && chars[i] <= 'z') {
          chars[i] = static_cast<char>(chars[i] - 'a' + 'A');
        }
      }
    }
    return st;
  }
};

class UppercaseAgent final : public PathnameSet {
 public:
  std::string name() const override { return "uppercase"; }

 protected:
  // The uppercase object transforms the data plane, so the footprint must keep
  // the descriptor rows on top of the pathname default.
  Footprint default_footprint() const override {
    return PathnameSet::default_footprint().Merge(Footprint::Classes(kTakesFd));
  }

  OpenObjectRef MakeDefaultObject(AgentCall& call, int fd, const std::string& p) override {
    if (StartsWith(p, "/loud")) {
      return std::make_shared<UppercaseObject>(fd, p);
    }
    return PathnameSet::MakeDefaultObject(call, fd, p);
  }
};

TEST(DescriptorLayer, CustomObjectsInterposeOnReads) {
  auto kernel = MakeWorld();
  kernel->fs().InstallFile("/loud/shout.txt", "hello world");
  kernel->fs().InstallFile("/tmp/quiet.txt", "hello world");
  const int status = RunBodyUnder(
      *kernel, {std::make_shared<UppercaseAgent>()}, [](ProcessContext& ctx) {
        std::string loud;
        ctx.ReadWholeFile("/loud/shout.txt", &loud);
        if (loud != "HELLO WORLD") {
          return 1;
        }
        std::string quiet;
        ctx.ReadWholeFile("/tmp/quiet.txt", &quiet);
        if (quiet != "hello world") {
          return 2;
        }
        // dup()'d descriptors share the same object.
        const int fd = ctx.Open("/loud/shout.txt", kORdonly);
        const int d = ctx.Dup(fd);
        char buf[6] = {};
        ctx.Read(d, buf, 5);
        if (std::string(buf) != "HELLO") {
          return 3;
        }
        return 0;
      });
  EXPECT_EQ(WExitStatus(status), 0);
}

// ---------------------------------------------------------------------------
// Pathname layer.
// ---------------------------------------------------------------------------

// Redirects /virtual/... to /real/... — the minimal name-space transformer.
class RedirectAgent final : public PathnameSet {
 public:
  std::string name() const override { return "redirect"; }

 protected:
  PathnameRef getpn(AgentCall& call, const char* p) override {
    const std::string absolute = AbsoluteClientPath(call, p);
    if (StartsWith(absolute, "/virtual")) {
      return std::make_unique<Pathname>(this, "/real" + absolute.substr(8));
    }
    return PathnameSet::getpn(call, p);
  }
};

TEST(PathnameLayer, GetpnRedirectsAllPathCalls) {
  auto kernel = MakeWorld();
  kernel->fs().MkdirAll("/real");
  const int status = RunBodyUnder(
      *kernel, {std::make_shared<RedirectAgent>()}, [](ProcessContext& ctx) {
        if (ctx.WriteWholeFile("/virtual/f.txt", "redirected") != 0) {
          return 1;
        }
        ia::Stat st;
        if (ctx.Stat("/virtual/f.txt", &st) != 0 || st.st_size != 10) {
          return 2;
        }
        if (ctx.Mkdir("/virtual/sub") != 0) {
          return 3;
        }
        if (ctx.Rename("/virtual/f.txt", "/virtual/sub/g.txt") != 0) {
          return 4;
        }
        std::string back;
        if (ctx.ReadWholeFile("/virtual/sub/g.txt", &back) != 0 || back != "redirected") {
          return 5;
        }
        if (ctx.Unlink("/virtual/sub/g.txt") != 0) {
          return 6;
        }
        if (ctx.Rmdir("/virtual/sub") != 0) {
          return 7;
        }
        return 0;
      });
  EXPECT_EQ(WExitStatus(status), 0);
  // Everything materialized under /real, nothing under /virtual.
  EXPECT_EQ(FileContents(*kernel, "/virtual"), "<missing>");
}

TEST(PathnameLayer, RelativePathsNormalizedAgainstCwd) {
  auto kernel = MakeWorld();
  kernel->fs().MkdirAll("/real");
  kernel->fs().MkdirAll("/virtual");  // must exist for chdir below
  kernel->fs().InstallFile("/real/inside.txt", "found");
  const int status = RunBodyUnder(
      *kernel, {std::make_shared<RedirectAgent>()}, [](ProcessContext& ctx) {
        // NOTE: chdir("/virtual") itself is redirected to /real.
        if (ctx.Chdir("/virtual") != 0) {
          return 1;
        }
        std::string data;
        if (ctx.ReadWholeFile("inside.txt", &data) != 0) {
          return 2;
        }
        return data == "found" ? 0 : 3;
      });
  EXPECT_EQ(WExitStatus(status), 0);
}

// ---------------------------------------------------------------------------
// Directory objects (layer 3).
// ---------------------------------------------------------------------------

// Filters "*.o" entries out of directory listings.
class HideObjectsDirectory final : public Directory {
 public:
  using Directory::Directory;
  int next_direntry(AgentCall& call, Dirent* out) override {
    for (;;) {
      const int got = Directory::next_direntry(call, out);
      if (got <= 0) {
        return got;
      }
      if (!EndsWith(out->d_name, ".o")) {
        return 1;
      }
    }
  }
};

class HideObjectsAgent final : public PathnameSet {
 public:
  std::string name() const override { return "hide_objects"; }

 protected:
  // The filtering iterator lives behind getdirentries/lseek, so merge the
  // direntry rows back on top of the pathname default.
  Footprint default_footprint() const override {
    return PathnameSet::default_footprint().Merge(Footprint::Direntry());
  }

  OpenObjectRef MakeDefaultObject(AgentCall& call, int fd, const std::string& p) override {
    DownApi api(call);
    Stat st;
    if (api.Fstat(fd, &st) == 0 && SIsDir(st.st_mode)) {
      return std::make_shared<HideObjectsDirectory>(fd, p);
    }
    return PathnameSet::MakeDefaultObject(call, fd, p);
  }
};

TEST(DirectoryLayer, DerivedIteratorFiltersEntries) {
  auto kernel = MakeWorld();
  kernel->fs().InstallFile("/proj/a.c", "");
  kernel->fs().InstallFile("/proj/a.o", "");
  kernel->fs().InstallFile("/proj/b.c", "");
  kernel->fs().InstallFile("/proj/b.o", "");
  const int status = RunBodyUnder(
      *kernel, {std::make_shared<HideObjectsAgent>()}, [](ProcessContext& ctx) {
        std::vector<std::string> names;
        if (ctx.ListDirectory("/proj", &names) != 0) {
          return 1;
        }
        for (const std::string& name : names) {
          if (EndsWith(name, ".o")) {
            return 2;
          }
        }
        int c_files = 0;
        for (const std::string& name : names) {
          if (EndsWith(name, ".c")) {
            ++c_files;
          }
        }
        return c_files == 2 ? 0 : 3;
      });
  EXPECT_EQ(WExitStatus(status), 0);
}

TEST(DirectoryLayer, SmallBufferPushbackWorks) {
  auto kernel = MakeWorld();
  for (int i = 0; i < 12; ++i) {
    kernel->fs().InstallFile(StringPrintf("/dirbuf/a-rather-long-file-name-%02d", i), "");
  }
  class PlainDirAgent final : public PathnameSet {
   public:
    std::string name() const override { return "plaindir"; }
  };
  const int status = RunBodyUnder(
      *kernel, {std::make_shared<PlainDirAgent>()}, [](ProcessContext& ctx) {
        const int fd = ctx.Open("/dirbuf", kORdonly);
        char tiny[48];  // roughly one record per call
        int64_t base = 0;
        int total = 0;
        for (;;) {
          const int n = ctx.Getdirentries(fd, tiny, sizeof(tiny), &base);
          if (n < 0) {
            return 1;
          }
          if (n == 0) {
            break;
          }
          total += static_cast<int>(DecodeDirents(tiny, n).size());
        }
        return total == 14 ? 0 : 2;  // 12 files + dot entries
      });
  EXPECT_EQ(WExitStatus(status), 0);
}

// ---------------------------------------------------------------------------
// Call-down semantics.
// ---------------------------------------------------------------------------


TEST(DescriptorLayer, CustomObjectsSurviveExecOnInheritedFds) {
  auto kernel = MakeWorld();
  kernel->fs().InstallFile("/loud/banner.txt", "quiet text");
  // The exec'd image reads fd 9, which the pre-exec image pointed at a custom
  // uppercasing object. The object must keep interposing after the image change.
  kernel->InstallProgram("/bin/reader9", "reader9", [](ProcessContext& ctx) {
    char buf[16] = {};
    const int64_t n = ctx.Read(9, buf, 10);
    if (n != 10) {
      return 1;
    }
    return std::string(buf, 10) == "QUIET TEXT" ? 0 : 2;
  });
  const int status = RunBodyUnder(
      *kernel, {std::make_shared<UppercaseAgent>()}, [](ProcessContext& ctx) {
        const int fd = ctx.Open("/loud/banner.txt", kORdonly);
        ctx.Dup2(fd, 9);
        ctx.Close(fd);
        ctx.Execve("/bin/reader9", {"reader9"});
        return 99;
      });
  EXPECT_EQ(WExitStatus(status), 0);
}

TEST(DescriptorLayer, CloexecObjectsDroppedOnExec) {
  auto kernel = MakeWorld();
  kernel->fs().InstallFile("/loud/secret.txt", "hidden");
  kernel->InstallProgram("/bin/probe9", "probe9", [](ProcessContext& ctx) {
    char buf[8];
    return ctx.Read(9, buf, 8) == -kEBadf ? 0 : 1;
  });
  const int status = RunBodyUnder(
      *kernel, {std::make_shared<UppercaseAgent>()}, [](ProcessContext& ctx) {
        const int fd = ctx.Open("/loud/secret.txt", kORdonly);
        ctx.Dup2(fd, 9);
        ctx.Close(fd);
        ctx.Fcntl(9, kFSetfd, 1);  // close-on-exec
        ctx.Execve("/bin/probe9", {"probe9"});
        return 99;
      });
  EXPECT_EQ(WExitStatus(status), 0);
}

TEST(CallDown, AgentOwnIoBypassesItself) {
  auto kernel = MakeWorld();
  // An agent that writes a log line on every unlink — through the lower
  // interface. If its own write() re-entered itself it would recurse.
  class LoggingUnlink final : public SymbolicSyscall {
   public:
    std::string name() const override { return "logging_unlink"; }
    std::atomic<int> unlinks_seen{0};

   protected:
    SyscallStatus sys_unlink(AgentCall& call, const char* p) override {
      ++unlinks_seen;
      DownApi api(call);
      const int log_fd = api.Open("/tmp/unlink.log", kOWronly | kOCreat | kOAppend, 0644);
      api.WriteString(log_fd, StringPrintf("unlink %s\n", p != nullptr ? p : "?"));
      api.Close(log_fd);
      return SymbolicSyscall::sys_unlink(call, p);
    }
  };
  auto agent = std::make_shared<LoggingUnlink>();
  kernel->fs().InstallFile("/tmp/victim1", "");
  kernel->fs().InstallFile("/tmp/victim2", "");
  const int status = RunBodyUnder(*kernel, {agent}, [](ProcessContext& ctx) {
    ctx.Unlink("/tmp/victim1");
    ctx.Unlink("/tmp/victim2");
    return 0;
  });
  EXPECT_EQ(WExitStatus(status), 0);
  EXPECT_EQ(agent->unlinks_seen.load(), 2);
  EXPECT_EQ(FileContents(*kernel, "/tmp/unlink.log"),
            "unlink /tmp/victim1\nunlink /tmp/victim2\n");
}

TEST(CallDown, UpperAgentCallsFlowThroughLowerAgent) {
  auto kernel = MakeWorld();
  auto lower = std::make_shared<RecordingAgent>(std::vector<int>{kSysWrite});
  class UpperWriter final : public NumericSyscall {
   public:
    std::string name() const override { return "upper_writer"; }

   protected:
    void init(ProcessContext&) override { register_interest(kSysGetpid); }
    SyscallStatus syscall(AgentCall& call) override {
      // On getpid, write a byte via the lower interface.
      DownApi api(call);
      const int fd = api.Open("/tmp/upper.log", kOWronly | kOCreat | kOAppend, 0644);
      api.Write(fd, "x", 1);
      api.Close(fd);
      return call.CallDown();
    }
  };
  RunBodyUnder(*kernel, {lower, std::make_shared<UpperWriter>()},
               [](ProcessContext& ctx) {
                 ctx.Getpid();
                 return 0;
               });
  // The lower agent must have seen the upper agent's write (Figure 1-3 stacking).
  EXPECT_GE(lower->SeenCount(kSysWrite), 1);
}

TEST(Signals, AgentSeesSignalBeforeApplication) {
  auto kernel = MakeWorld();
  class SignalTap final : public NumericSyscall {
   public:
    std::string name() const override { return "signal_tap"; }
    std::atomic<int> taps{0};
    std::atomic<bool> swallow{false};

   protected:
    void init(ProcessContext&) override { register_signal_interest(kSigUsr1); }
    void signal_handler(AgentSignal& signal) override {
      ++taps;
      if (!swallow.load()) {
        signal.ForwardUp();
      }
    }
  };
  auto tap = std::make_shared<SignalTap>();
  const int status = RunBodyUnder(*kernel, {tap}, [&tap](ProcessContext& ctx) {
    int app_got = 0;
    ctx.Sigvec(kSigUsr1, 2, [&app_got](ProcessContext&, int) { ++app_got; });
    ctx.Kill(ctx.Getpid(), kSigUsr1);
    ctx.Getpid();
    if (app_got != 1) {
      return 1;  // forwarded to the application
    }
    tap->swallow.store(true);
    ctx.Kill(ctx.Getpid(), kSigUsr1);
    ctx.Getpid();
    if (app_got != 1) {
      return 2;  // swallowed by the agent: the app never saw it
    }
    return 0;
  });
  EXPECT_EQ(WExitStatus(status), 0);
  EXPECT_EQ(tap->taps.load(), 2);
}

TEST(Signals, AgentCanSwallowTerminationSignal) {
  auto kernel = MakeWorld();
  class Shield final : public NumericSyscall {
   public:
    std::string name() const override { return "shield"; }

   protected:
    void init(ProcessContext&) override { register_signal_interest(kSigTerm); }
    void signal_handler(AgentSignal&) override {
      // Do not forward: the client survives SIGTERM.
    }
  };
  const int status = RunBodyUnder(*kernel, {std::make_shared<Shield>()},
                                  [](ProcessContext& ctx) {
                                    ctx.Kill(ctx.Getpid(), kSigTerm);
                                    ctx.Getpid();  // delivery point; shield absorbs
                                    return 0;      // still alive
                                  });
  EXPECT_TRUE(WifExited(status));
  EXPECT_EQ(WExitStatus(status), 0);
}

}  // namespace
}  // namespace ia
