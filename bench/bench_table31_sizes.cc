// Table 3-1: "Sizes of agents, measured in semicolons."
//
//   Paper:   agent    toolkit  agent-specific  total
//            timex       2467              35   2502
//            trace       2467            1348   3815
//            union       3977             166   4143
//
// Shape claims: the toolkit dominates simple agents; timex is tiny; trace is
// proportional to the size of the interface (every call printed); union is far
// smaller than trace despite touching all 70 pathname/descriptor calls, because
// it is written against the pathname/directory abstractions; union reuses the
// extra descriptor/open-object/pathname toolkit layers.
#include <cstdio>

#include "bench/bench_util.h"

namespace {

using ia::bench::CountSemicolonsInFiles;

// "The symbolic system call and lower levels of the toolkit" (used by timex and
// trace): interception boilerplate + layers 0 and 1. The layer-1 decode is
// generated from the syscall specification table, so the table sources count
// toward the toolkit too.
const std::vector<std::string> kSymbolicAndLower = {
    "src/interpose/agent.h",          "src/interpose/agent.cc",
    "src/toolkit/numeric_syscall.h",  "src/toolkit/down_api.h",
    "src/toolkit/down_api.cc",        "src/toolkit/symbolic_syscall.h",
    "src/toolkit/symbolic_syscall.cc", "src/kernel/syscalls.def",
    "src/kernel/syscall_table.h",     "src/kernel/syscall_table.cc",
};

// The additional "descriptor, open object, and pathname levels" reused by union
// (and dfs_trace): layers 2 and 3.
const std::vector<std::string> kObjectLayers = {
    "src/toolkit/open_object.h",    "src/toolkit/open_object.cc",
    "src/toolkit/directory.h",      "src/toolkit/directory.cc",
    "src/toolkit/descriptor_set.h", "src/toolkit/descriptor_set.cc",
    "src/toolkit/pathname_set.h",   "src/toolkit/pathname_set.cc",
};

struct AgentRow {
  const char* name;
  std::vector<std::string> agent_files;
  bool uses_object_layers;
};

}  // namespace

int main() {
  const int symbolic_stmts = CountSemicolonsInFiles(kSymbolicAndLower);
  const int object_stmts = CountSemicolonsInFiles(kObjectLayers);

  const AgentRow rows[] = {
      {"timex", {"src/agents/timex.h"}, false},
      {"trace", {"src/agents/trace.h", "src/agents/trace.cc"}, false},
      {"union", {"src/agents/union_fs.h", "src/agents/union_fs.cc"}, true},
      {"dfs_trace", {"src/agents/dfs_trace.h", "src/agents/dfs_trace.cc"}, true},
  };

  std::printf("Table 3-1: Sizes of agents, measured in semicolons\n");
  std::printf("(paper: timex 2467+35, trace 2467+1348, union 3977+166)\n\n");
  std::printf("  %-10s %10s %10s %10s\n", "Agent", "Toolkit", "Agent", "Total");
  std::printf("  %-10s %10s %10s %10s\n", "Name", "Stmts", "Stmts", "Stmts");
  int timex_agent = 0;
  int trace_agent = 0;
  int union_agent = 0;
  for (const AgentRow& row : rows) {
    const int toolkit = symbolic_stmts + (row.uses_object_layers ? object_stmts : 0);
    const int agent = CountSemicolonsInFiles(row.agent_files);
    std::printf("  %-10s %10d %10d %10d\n", row.name, toolkit, agent, toolkit + agent);
    if (std::string(row.name) == "timex") {
      timex_agent = agent;
    }
    if (std::string(row.name) == "trace") {
      trace_agent = agent;
    }
    if (std::string(row.name) == "union") {
      union_agent = agent;
    }
  }

  std::printf("\nShape checks (paper Section 3.3.4):\n");
  std::printf("  toolkit dominates the simplest agent (timex):        %s\n",
              symbolic_stmts > 10 * timex_agent ? "yes" : "NO");
  std::printf("  trace agent code ~ proportional to interface size:   %s\n",
              trace_agent > 5 * timex_agent ? "yes" : "NO");
  std::printf("  union written against abstractions << trace:         %s\n",
              union_agent < trace_agent ? "yes" : "NO");
  std::printf("  union reuses the larger (object-layer) toolkit:      %s\n",
              symbolic_stmts + CountSemicolonsInFiles(kObjectLayers) > symbolic_stmts
                  ? "yes"
                  : "NO");
  return 0;
}
