// Ablation: the trace agent's unbuffered output policy (paper footnote 5:
// "Trace output is not buffered across system calls so it will not be lost if
// the process is killed"). Each traced call costs two extra write(2) calls;
// buffering amortizes them at the price of losing the tail on a crash.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/agents/trace.h"
#include "src/apps/apps.h"

namespace {

void Setup(ia::Kernel& kernel) {
  ia::InstallStandardPrograms(kernel);
  ia::SetupMakeWorkload(kernel, /*programs=*/4);
}

}  // namespace

int main() {
  ia::KernelConfig config;

  ia::SpawnOptions spawn;
  spawn.path = "/bin/make";
  spawn.argv = {"make"};
  spawn.cwd = "/home/mbj/progs";

  std::printf("Ablation: trace agent output buffering (make 4 programs)\n\n");
  std::printf("  %-24s %10s %10s\n", "Configuration", "Seconds", "Slowdown");

  const std::vector<ia::bench::NamedConfig> configs = {
      {"none", nullptr},
      {"trace (unbuffered)",
       [] {
         return std::vector<ia::AgentRef>{std::make_shared<ia::TraceAgent>(
             ia::TraceOptions{.log_path = "/tmp/t.log", .unbuffered = true})};
       }},
      {"trace (buffered)",
       [] {
         return std::vector<ia::AgentRef>{std::make_shared<ia::TraceAgent>(
             ia::TraceOptions{.log_path = "/tmp/t.log", .unbuffered = false})};
       }},
  };
  const std::vector<ia::bench::WorkloadResult> results =
      ia::bench::TimeWorkloadsInterleaved(Setup, spawn, configs, config);
  for (size_t i = 0; i < configs.size(); ++i) {
    ia::bench::PrintSlowdownRow(configs[i].name, results[i], results[0].mean_seconds);
  }

  std::printf(
      "\nExpected shape: unbuffered tracing roughly triples the system call count\n"
      "(two write(2) calls per traced call); buffering removes nearly all of those\n"
      "extra calls at the price of losing the log tail if the client is killed.\n"
      "On this substrate a write(2) is cheap, so the *time* difference is small —\n"
      "on the paper's hardware the same call-count reduction was the whole win.\n");
  return 0;
}
