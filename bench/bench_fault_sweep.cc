// Fault sweep: the robustness companion to the Table 3-3 make benchmark.
//
// Part 1 drives every implemented system call with benign arguments under an
// aggressive kernel FaultPlan (25% errno injection per abstraction class, 25%
// EINTR on blocking calls, 25% short transfers) and checks the two properties
// the fault plane promises: the process always sees an errno or a partial
// result (never a crash, and the world stays usable afterwards), and the
// entire fault stream is byte-reproducible from the plan seed.
//
// Part 2 runs the paper's "make 8 programs" workload under composed
// chaos+retry agents (and a chaos+retry+union stack, each agent at its
// table-derived narrowed footprint) and under a kernel-plane plan with a retry
// agent, at escalating recoverable-fault rates, and checks transparency end to
// end: the resulting filesystem is byte-identical to the fault-free build.
//
// Part 3 reports the cost of the *disabled* hook (no plan installed — one null
// pointer test per dispatch) against an installed-but-empty plan, on the
// Table 3-5 null-call row.
//
// Part 4 is the containment gate (DESIGN.md §12): the make workload runs under
// a 7-agent stack whose kernel-nearest frame is a deliberately misbehaving
// FaultyAgent (throws, garbled completions, budget overruns, all decided by
// DecideAgentFault from a fixed seed). The gate demands that the breaker trips
// (quarantine events in ContainmentStats() and the kProcess ktrace slice) and
// that the build output is byte-for-byte identical to the same stack with the
// faulty frame absent — and that a second identical run reproduces the digest
// and the quarantine count exactly.
//
// Usage: bench_fault_sweep [--chaos=<seed>,<rate>] [--agent-chaos=<seed>,<rate>]
//                          [--containment-only]
//   --chaos: plan seed for parts 1-2 (default 0x1993) and the steepest
//            recoverable-fault rate for part 2 (default 0.25)
//   --agent-chaos: seed and throw-rate for part 4's FaultyAgent (default
//            0x1993, 0.5; garble and overrun rates derive from the throw rate)
//   --containment-only: run only part 4 (the sanitizer legs use this)
//
// Exits nonzero on any correctness failure; timing is reported, not gated.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/agents/chaos.h"
#include "src/agents/dfs_trace.h"
#include "src/agents/faulty.h"
#include "src/agents/filter_fs.h"
#include "src/agents/retry.h"
#include "src/agents/sandbox.h"
#include "src/agents/txn.h"
#include "src/agents/union_fs.h"
#include "src/apps/apps.h"
#include "src/kernel/ktrace.h"
#include "src/kernel/syscall_table.h"

namespace ia {
namespace {

// FNV-1a over every path, type, mode, and byte of content in the filesystem.
// Entry maps are ordered, so the walk (and the digest) is deterministic.
uint64_t DigestInode(const InodeRef& dir, const std::string& prefix, uint64_t h) {
  auto mix = [&h](const std::string& s) {
    for (const char c : s) {
      h = (h ^ static_cast<uint8_t>(c)) * 0x100000001b3ull;
    }
  };
  for (const auto& [name, child] : dir->entries) {
    const std::string full = prefix + "/" + name;
    if (full.rfind("/tmp", 0) == 0) {
      continue;  // scratch space is not part of the build output
    }
    mix(full);
    mix(std::to_string(static_cast<int>(child->type())));
    mix(std::to_string(child->mode_bits));
    if (child->IsRegular()) {
      mix(child->data);
    }
    if (child->IsSymlink()) {
      mix(child->symlink_target);
    }
    if (child->IsDirectory()) {
      h = DigestInode(child, full, h);
    }
  }
  return h;
}

uint64_t FsDigest(Kernel& kernel) {
  return DigestInode(kernel.fs().root(), "", 0xcbf29ce484222325ull);
}

// ---- Part 1: per-class errno sweep over the whole implemented interface ----

struct SweepScratch {
  alignas(16) char buf[4096];
  IoVec iov[1];
  SweepScratch() {
    std::memset(buf, 'b', sizeof(buf));
    buf[sizeof(buf) - 1] = '\0';
    iov[0] = {buf, 64};
  }
};

void SetBenignArg(SyscallArgs* args, int i, ArgKind kind, SweepScratch& scratch) {
  switch (kind) {
    case ArgKind::kFd: args->SetInt(i, 1); return;
    case ArgKind::kInt: args->SetInt(i, 1); return;
    case ArgKind::kLong: args->SetInt(i, 64); return;
    case ArgKind::kFlags: args->SetInt(i, kORdwr | kOCreat); return;
    case ArgKind::kMode: args->SetInt(i, 0644); return;
    case ArgKind::kOff: args->SetInt(i, 0); return;
    case ArgKind::kPid: args->SetInt(i, 0); return;
    // Signal 0 is rejected with EINVAL everywhere: the sweep must not deliver
    // real signals to itself mid-loop.
    case ArgKind::kSig: args->SetInt(i, 0); return;
    case ArgKind::kPath: args->SetPtr(i, "/tmp/sweep_target"); return;
    case ArgKind::kStr: args->SetPtr(i, "sweep_str"); return;
    case ArgKind::kBufIn:
    case ArgKind::kBufOut:
    case ArgKind::kCharBuf:
    case ArgKind::kVoidPtr:
    case ArgKind::kStatPtr:
    case ArgKind::kRusagePtr:
    case ArgKind::kIntPtr:
    case ArgKind::kLongPtr:
    case ArgKind::kTvPtr:
    case ArgKind::kCTvPtr:
    case ArgKind::kTzPtr:
    case ArgKind::kCTzPtr:
    case ArgKind::kGidPtr:
    case ArgKind::kCGidPtr:
      args->SetPtr(i, scratch.buf);
      return;
    case ArgKind::kIoVecPtr: args->SetPtr(i, scratch.iov); return;
    default: args->SetInt(i, 0); return;
  }
}

bool SkipInSweep(int number) {
  switch (number) {
    case kSysExit:
    case kSysFork:
    case kSysVfork:
    case kSysSigpause:  // would block awaiting a signal
    // Pipes are the one way this single-process sweep can mint a descriptor
    // that blocks: when the plan then injects EBADF into the cleanup close(),
    // a write end leaks and the next round's read() waits forever. Console
    // and regular-file descriptors never block, so everything else is safe.
    case kSysPipe:
      return true;
    default:
      return false;
  }
}

int SweepBody(ProcessContext& ctx) {
  SweepScratch scratch;
  for (int round = 0; round < 40; ++round) {
    for (int number = 1; number < kMaxSyscall; ++number) {
      if (SkipInSweep(number) || (SyscallSpecOf(number).flags & kImplemented) == 0) {
        continue;
      }
      const SyscallSpec& spec = SyscallSpecOf(number);
      SyscallArgs args;
      for (int i = 0; i < spec.nargs; ++i) {
        SetBenignArg(&args, i, spec.args[static_cast<size_t>(i)], scratch);
      }
      SyscallResult rv;
      (void)ctx.Syscall(number, args, &rv);
    }
    // Drop every descriptor the round may have opened (pipe ends included).
    // Without this, a pipe read end can migrate into the fd the next round
    // reads from while its write end stays open elsewhere — and a blocking
    // read on an empty pipe with live writers waits forever.
    for (int fd = 3; fd < kMaxFilesPerProcess; ++fd) {
      ctx.Close(fd);
    }
  }
  return 0;
}

FaultPlan SweepPlan(uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.class_rules = {{kTakesPath, 0.25, kENoent},
                      {kTakesFd, 0.25, kEBadf},
                      {kProcess, 0.25, kEAgain},
                      {kSignalRelated, 0.25, kEInval}};
  plan.eintr_probability = 0.25;
  plan.short_probability = 0.25;
  plan.record_trace = true;
  return plan;
}

struct SweepOutcome {
  bool exited_clean = false;
  bool world_usable = false;
  int64_t total_injected = 0;
  std::string trace;
};

SweepOutcome RunKernelSweep(uint64_t seed) {
  SweepOutcome out;
  Kernel kernel{KernelConfig{}};
  kernel.SetFaultPlan(SweepPlan(seed));
  SpawnOptions spawn;
  spawn.body = SweepBody;
  const int status = kernel.HostWaitPid(kernel.Spawn(spawn));
  out.exited_clean = WifExited(status) && WExitStatus(status) == 0;
  for (const FaultStat& stat : kernel.FaultStats()) {
    out.total_injected += stat.Total();
  }
  out.trace = kernel.FaultTraceText();
  // The world must still work after the storm (clearing the plan drops the
  // injector and its counters, so the snapshot above comes first).
  kernel.ClearFaultPlan();
  SpawnOptions probe;
  probe.body = [](ProcessContext& ctx) {
    const int fd = ctx.Open("/tmp/post_sweep", kOWronly | kOCreat, 0644);
    if (fd < 0) {
      return 1;
    }
    return ctx.Write(fd, "ok", 2) == 2 && ctx.Close(fd) == 0 ? 0 : 1;
  };
  const int probe_status = kernel.HostWaitPid(kernel.Spawn(probe));
  out.world_usable = WifExited(probe_status) && WExitStatus(probe_status) == 0;
  return out;
}

// ---- Part 2: make workload transparency under escalating fault rates -------

FaultPlan RecoverablePlan(uint64_t seed, double rate) {
  // Only faults the retry agent can mask: EINTR on blocking calls, short
  // transfers, and transient EAGAIN on read/write. No exhaustion regimes —
  // a build genuinely out of descriptors or disk is *supposed* to fail.
  FaultPlan plan;
  plan.seed = seed;
  plan.eintr_probability = rate;
  plan.short_probability = rate;
  plan.number_rules = {{kSysRead, rate / 2, kEAgain}, {kSysWrite, rate / 2, kEAgain}};
  return plan;
}

// Which layer injects the faults, and what sits above it.
enum class MakePlane {
  kKernelRetry,      // kernel FaultPlan + retry agent
  kChaosRetry,       // chaos agent (nearest kernel) + retry agent
  kChaosRetryUnion,  // chaos + retry + a union agent on top, every agent at its
                     // table-derived narrowed footprint (the pay-per-use stack)
};

int RunMake(uint64_t seed, double rate, MakePlane plane, uint64_t* digest,
            int64_t* injected) {
  KernelConfig config;
  config.compute_spin_scale = 0.15;
  Kernel kernel(config);
  InstallStandardPrograms(kernel);
  SetupMakeWorkload(kernel, /*programs=*/8);

  SpawnOptions spawn;
  spawn.path = "/bin/make";
  spawn.argv = {"make"};
  spawn.cwd = "/home/mbj/progs";

  std::shared_ptr<ChaosAgent> chaos;
  std::vector<AgentRef> agents;
  if (rate > 0) {
    if (plane == MakePlane::kKernelRetry) {
      kernel.SetFaultPlan(RecoverablePlan(seed, rate));
      agents = {std::make_shared<RetryAgent>()};
    } else {
      chaos = std::make_shared<ChaosAgent>(RecoverablePlan(seed, rate));
      agents = {chaos, std::make_shared<RetryAgent>()};  // chaos nearest the kernel
      if (plane == MakePlane::kChaosRetryUnion) {
        // Union members live under /tmp so the extra mount scaffolding stays
        // outside the digested build output.
        kernel.fs().MkdirAll("/tmp/w");
        kernel.fs().MkdirAll("/tmp/r");
        agents.push_back(std::make_shared<UnionAgent>(
            std::vector<UnionMount>{{"/tmp/u", {"/tmp/w", "/tmp/r"}}}));
      }
    }
  }
  const int status = agents.empty() ? kernel.HostWaitPid(kernel.Spawn(spawn))
                                    : RunUnderAgents(kernel, agents, spawn);
  *digest = FsDigest(kernel);
  *injected = 0;
  const auto stats = plane == MakePlane::kKernelRetry ? kernel.FaultStats()
                     : chaos != nullptr ? chaos->FaultStats()
                                        : std::array<FaultStat, kMaxSyscall>{};
  for (const FaultStat& stat : stats) {
    *injected += stat.Total();
  }
  return status;
}

// ---- Part 4: containment gate — faulty frame quarantined mid-make ----------

// The agent-plane misbehavior regime: `rate` is the throw probability; garble
// and overrun fire at rate/2 and rate/8 so every failure kind is exercised
// without the overrun spin dominating wall-clock.
FaultPlan AgentChaosPlan(uint64_t seed, double rate) {
  FaultPlan plan;
  plan.seed = seed;
  plan.agent_throw_probability = rate;
  plan.agent_garble_probability = rate / 2;
  plan.agent_overrun_probability = rate / 8;
  return plan;
}

struct FaultyStackOutcome {
  bool exited_clean = false;
  uint64_t digest = 0;
  int64_t misbehaved = 0;        // throws + garbles + overruns actually performed
  int64_t quarantines = 0;       // Kernel::ContainmentStats().quarantines
  int64_t ktrace_quarantines = 0;  // kAgentQuarantined records on the kProcess slice
};

// The make workload under the pay-per-use 7-agent stack shape, with a
// FaultyAgent interposed nearest the kernel when `include_faulty` is set. All
// scaffolding lives under /tmp, which FsDigest skips, so the two stacks are
// digest-comparable. No compute spin: the TSan containment leg runs this too.
FaultyStackOutcome RunMakeUnderFaultyStack(uint64_t seed, double rate, bool include_faulty) {
  FaultyStackOutcome out;
  Kernel kernel{KernelConfig{}};
  InstallStandardPrograms(kernel);
  SetupMakeWorkload(kernel, /*programs=*/8);
  kernel.fs().MkdirAll("/tmp/w");
  kernel.fs().MkdirAll("/tmp/r");
  RingKtraceSink process_slice(4096);
  kernel.SetKtraceSlot(1, &process_slice, kProcess);

  auto faulty = std::make_shared<FaultyAgent>(AgentChaosPlan(seed, rate));
  std::vector<AgentRef> agents;
  if (include_faulty) {
    agents.push_back(faulty);  // nearest the kernel: every frame above survives it
  }
  agents.push_back(std::make_shared<RetryAgent>());
  agents.push_back(std::make_shared<UnionAgent>(
      std::vector<UnionMount>{{"/tmp/u", {"/tmp/w", "/tmp/r"}}}));
  SandboxPolicy sandbox_policy;  // default write_prefixes is empty = read-only
  sandbox_policy.write_prefixes = {"/"};
  agents.push_back(std::make_shared<SandboxAgent>(sandbox_policy));
  agents.push_back(std::make_shared<TxnAgent>("/t", "/tmp/.txn"));
  agents.push_back(std::make_shared<CompressAgent>("/z"));
  agents.push_back(std::make_shared<DfsTraceAgent>("/tmp/dfs.log"));

  SpawnOptions spawn;
  spawn.path = "/bin/make";
  spawn.argv = {"make"};
  spawn.cwd = "/home/mbj/progs";
  const int status = RunUnderAgents(kernel, agents, spawn);
  out.exited_clean = WifExited(status) && WExitStatus(status) == 0;
  out.digest = FsDigest(kernel);
  out.misbehaved = faulty->Misbehaved();
  out.quarantines = kernel.ContainmentStats().quarantines;
  for (const KtraceRecord& record : process_slice.Snapshot()) {
    if (record.kind == KtraceEventKind::kAgentQuarantined) {
      ++out.ktrace_quarantines;
    }
  }
  kernel.SetKtraceSlot(1, nullptr, 0);
  return out;
}

// Runs part 4 and returns the number of gate failures.
int RunContainmentGate(uint64_t agent_seed, double agent_rate) {
  std::printf("\nPart 4: containment gate — faulty frame under the 7-agent make stack "
              "(seed %#" PRIx64 ", rate %.2f)\n",
              agent_seed, agent_rate);
  int failures = 0;
  const FaultyStackOutcome baseline =
      RunMakeUnderFaultyStack(agent_seed, agent_rate, /*include_faulty=*/false);
  if (!baseline.exited_clean) {
    std::printf("  FAIL: baseline stack (no faulty frame) did not build cleanly\n");
    return 1;
  }
  std::printf("  %-28s %12s %10s %11s\n", "stack", "fs digest", "misbehave", "quarantine");
  std::printf("  %-28s %12" PRIx64 " %10s %11s\n", "6 agents (no faulty frame)",
              baseline.digest, "-", "-");
  const FaultyStackOutcome faulty =
      RunMakeUnderFaultyStack(agent_seed, agent_rate, /*include_faulty=*/true);
  const bool contained = faulty.exited_clean && faulty.digest == baseline.digest &&
                         faulty.misbehaved > 0 && faulty.quarantines >= 1 &&
                         faulty.ktrace_quarantines >= 1;
  std::printf("  %-28s %12" PRIx64 " %10lld %11lld  %s\n", "7 agents (faulty nearest k)",
              faulty.digest, static_cast<long long>(faulty.misbehaved),
              static_cast<long long>(faulty.quarantines),
              contained ? "contained, output identical" : "FAIL");
  if (!contained) {
    if (!faulty.exited_clean) {
      std::printf("  FAIL: faulty-stack build did not exit cleanly\n");
    }
    if (faulty.digest != baseline.digest) {
      std::printf("  FAIL: faulty-stack output differs from the baseline\n");
    }
    if (faulty.misbehaved == 0) {
      std::printf("  FAIL: the faulty agent never misbehaved (rate too low?)\n");
    }
    if (faulty.quarantines < 1) {
      std::printf("  FAIL: the breaker never tripped (ContainmentStats)\n");
    }
    if (faulty.ktrace_quarantines < 1) {
      std::printf("  FAIL: no kAgentQuarantined record on the ktrace process slice\n");
    }
    ++failures;
  }
  const FaultyStackOutcome again =
      RunMakeUnderFaultyStack(agent_seed, agent_rate, /*include_faulty=*/true);
  if (again.digest == faulty.digest && again.quarantines == faulty.quarantines &&
      again.misbehaved == faulty.misbehaved) {
    std::printf("  same seed reproduces digest, misbehavior, and quarantine count\n");
  } else {
    std::printf("  FAIL: same seed diverged (digest %12" PRIx64 " vs %12" PRIx64
                ", quarantines %lld vs %lld)\n",
                again.digest, faulty.digest, static_cast<long long>(again.quarantines),
                static_cast<long long>(faulty.quarantines));
    ++failures;
  }
  return failures;
}

// ---- Part 3: disabled-hook null-call cost ----------------------------------

double NullCallMicros(Kernel& kernel) {
  std::vector<AgentRef> no_agents;
  return bench::MeasurePerCallMicros(kernel, no_agents, [](ProcessContext& ctx) {
    SyscallArgs args;
    SyscallResult rv;
    ctx.Syscall(kSysGetpid, args, &rv);
  });
}

}  // namespace
}  // namespace ia

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IONBF, 0);  // progress stays visible under CI redirection
  uint64_t seed = 0x1993;
  double max_rate = 0.25;
  uint64_t agent_seed = 0x1993;
  double agent_rate = 0.5;
  bool containment_only = false;
  for (int i = 1; i < argc; ++i) {
    unsigned long long parsed_seed = 0;
    double parsed_rate = 0;
    if (std::sscanf(argv[i], "--chaos=%llu,%lf", &parsed_seed, &parsed_rate) == 2) {
      seed = parsed_seed;
      max_rate = parsed_rate;
    } else if (std::sscanf(argv[i], "--agent-chaos=%llu,%lf", &parsed_seed, &parsed_rate) == 2) {
      agent_seed = parsed_seed;
      agent_rate = parsed_rate;
    } else if (std::strcmp(argv[i], "--containment-only") == 0) {
      containment_only = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--chaos=<seed>,<rate>] [--agent-chaos=<seed>,<rate>] "
                   "[--containment-only]\n",
                   argv[0]);
      return 2;
    }
  }

  if (containment_only) {
    const int failures = ia::RunContainmentGate(agent_seed, agent_rate);
    if (failures == 0) {
      std::printf("\ncontainment gate: all correctness checks passed\n");
      return 0;
    }
    std::printf("\ncontainment gate: %d FAILURE(S)\n", failures);
    return 1;
  }

  int failures = 0;

  std::printf("Part 1: 25%%-per-class fault sweep over the implemented interface (seed %#" PRIx64
              ")\n",
              seed);
  const ia::SweepOutcome a = ia::RunKernelSweep(seed);
  const ia::SweepOutcome b = ia::RunKernelSweep(seed);
  const ia::SweepOutcome c = ia::RunKernelSweep(seed + 1);
  std::printf("  run A: clean exit %s, world usable %s, %lld faults injected\n",
              a.exited_clean ? "yes" : "NO", a.world_usable ? "yes" : "NO",
              static_cast<long long>(a.total_injected));
  if (!a.exited_clean || !a.world_usable || a.total_injected == 0) {
    ++failures;
  }
  if (a.trace == b.trace && a.total_injected == b.total_injected) {
    std::printf("  same seed reproduces the fault stream byte-for-byte (%zu trace bytes)\n",
                a.trace.size());
  } else {
    std::printf("  FAIL: same seed gave a different fault stream\n");
    ++failures;
  }
  if (c.trace != a.trace) {
    std::printf("  different seed diverges (as expected)\n");
  } else {
    std::printf("  FAIL: seed %#" PRIx64 " and %#" PRIx64 " gave identical streams\n", seed,
                seed + 1);
    ++failures;
  }

  std::printf("\nPart 2: make 8 programs under recoverable faults + retry\n");
  uint64_t clean_digest = 0;
  int64_t injected = 0;
  const int clean_status =
      ia::RunMake(seed, 0.0, ia::MakePlane::kChaosRetry, &clean_digest, &injected);
  if (!ia::WifExited(clean_status) || ia::WExitStatus(clean_status) != 0) {
    std::printf("  FAIL: fault-free build did not exit cleanly\n");
    return failures + 1;
  }
  std::printf("  %-22s %-8s %10s %12s\n", "plane", "rate", "faults", "fs digest");
  std::printf("  %-22s %-8s %10s %12" PRIx64 "\n", "none", "0", "-", clean_digest);
  const double rates[] = {0.02, 0.10, max_rate};
  const ia::MakePlane planes[] = {ia::MakePlane::kKernelRetry, ia::MakePlane::kChaosRetry,
                                  ia::MakePlane::kChaosRetryUnion};
  const char* plane_names[] = {"kernel+retry", "chaos+retry", "chaos+retry+union"};
  for (size_t p = 0; p < 3; ++p) {
    for (const double rate : rates) {
      uint64_t digest = 0;
      const int status = ia::RunMake(seed, rate, planes[p], &digest, &injected);
      const bool ok = ia::WifExited(status) && ia::WExitStatus(status) == 0 &&
                      digest == clean_digest;
      std::printf("  %-22s %-8.2f %10lld %12" PRIx64 "  %s\n", plane_names[p], rate,
                  static_cast<long long>(injected), digest,
                  ok ? "identical" : "FAIL: output differs");
      if (!ok) {
        ++failures;
      }
    }
  }

  std::printf("\nPart 3: null-call cost of the dispatch hook (Table 3-5 row)\n");
  {
    ia::Kernel off{ia::KernelConfig{}};
    const double no_plan = ia::NullCallMicros(off);
    ia::Kernel on{ia::KernelConfig{}};
    on.SetFaultPlan(ia::FaultPlan{});  // installed but entirely inert
    const double empty_plan = ia::NullCallMicros(on);
    std::printf("  no plan installed:    %.3f us/call\n", no_plan);
    std::printf("  empty plan installed: %.3f us/call (+%.1f%%)\n", empty_plan,
                no_plan > 0 ? (empty_plan / no_plan - 1) * 100 : 0);
  }

  failures += ia::RunContainmentGate(agent_seed, agent_rate);

  if (failures == 0) {
    std::printf("\nfault sweep: all correctness checks passed\n");
  } else {
    std::printf("\nfault sweep: %d FAILURE(S)\n", failures);
  }
  return failures == 0 ? 0 : 1;
}
