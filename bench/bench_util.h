// Shared harness pieces for the paper-table benchmarks.
//
// The paper's methodology is reproduced exactly where it is stated: workload
// tables (3-2, 3-3) report the average of nine successive runs after an initial
// discarded run; micro tables (3-4, 3-5) report per-operation microseconds from
// long in-process loops.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <array>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "src/base/clock.h"
#include "src/base/stats.h"
#include "src/interpose/agent.h"
#include "src/kernel/kernel.h"

namespace ia {
namespace bench {

struct WorkloadResult {
  double mean_seconds = 0;
  double stddev_seconds = 0;
  int64_t syscalls = 0;  // syscalls per run (from the last run)
  // Per-syscall dispatcher counter deltas across the last run (counts, errors,
  // virtual time). Snapshotted before/after via Kernel::SyscallStats(), so the
  // numbers attribute the workload's time to individual calls.
  std::array<SyscallStat, kMaxSyscall> stat_deltas{};
};

// Subtracts two SyscallStats() snapshots entry-wise.
inline std::array<SyscallStat, kMaxSyscall> DiffSyscallStats(
    const std::array<SyscallStat, kMaxSyscall>& before,
    const std::array<SyscallStat, kMaxSyscall>& after) {
  std::array<SyscallStat, kMaxSyscall> delta{};
  for (size_t i = 0; i < delta.size(); ++i) {
    delta[i].calls = after[i].calls - before[i].calls;
    delta[i].errors = after[i].errors - before[i].errors;
    delta[i].vtime_usec = after[i].vtime_usec - before[i].vtime_usec;
  }
  return delta;
}

using AgentFactory = std::function<std::vector<AgentRef>()>;

// Builds a fresh world, runs the workload once discarded + `runs` timed times.
// `setup` installs programs and input trees; `spawn` describes the client.
// Agents are constructed fresh per run (agents holding descriptors or frames are
// per-world objects).
inline WorkloadResult TimeWorkload(const std::function<void(Kernel&)>& setup,
                                   const SpawnOptions& spawn, const AgentFactory& factory,
                                   const KernelConfig& config, int runs = 9) {
  WorkloadResult result;
  RunningStats stats;
  for (int run = 0; run <= runs; ++run) {
    Kernel kernel(config);
    setup(kernel);
    const std::vector<AgentRef> agents = factory != nullptr ? factory() : std::vector<AgentRef>{};
    const int64_t calls_before = kernel.TotalSyscallCount();
    const auto stats_before = kernel.SyscallStats();
    const int64_t start = MonotonicMicros();
    const int status = agents.empty()
                           ? kernel.HostWaitPid(kernel.Spawn(spawn))
                           : RunUnderAgents(kernel, agents, spawn);
    const int64_t elapsed = MonotonicMicros() - start;
    if (!WifExited(status) || WExitStatus(status) != 0) {
      std::fprintf(stderr, "workload failed (status %#x)\n", status);
    }
    if (run == 0) {
      continue;  // paper: "after an initial run from which the time was discarded"
    }
    stats.Add(static_cast<double>(elapsed) / 1e6);
    result.syscalls = kernel.TotalSyscallCount() - calls_before;
    result.stat_deltas = DiffSyscallStats(stats_before, kernel.SyscallStats());
  }
  result.mean_seconds = stats.Mean();
  result.stddev_seconds = stats.StdDev();
  return result;
}

struct NamedConfig {
  std::string name;
  AgentFactory factory;  // null = no agent
};

// Times several agent configurations INTERLEAVED: one full discarded warm-up
// pass, then `runs` passes each visiting every configuration once. Interleaving
// cancels the allocator/page-cache drift that sequential blocks suffer from.
inline std::vector<WorkloadResult> TimeWorkloadsInterleaved(
    const std::function<void(Kernel&)>& setup, const SpawnOptions& spawn,
    const std::vector<NamedConfig>& configs, const KernelConfig& config, int runs = 9) {
  std::vector<RunningStats> stats(configs.size());
  std::vector<WorkloadResult> results(configs.size());
  for (int run = 0; run <= runs; ++run) {
    for (size_t i = 0; i < configs.size(); ++i) {
      Kernel kernel(config);
      setup(kernel);
      const std::vector<AgentRef> agents =
          configs[i].factory != nullptr ? configs[i].factory() : std::vector<AgentRef>{};
      const int64_t calls_before = kernel.TotalSyscallCount();
      const auto stats_before = kernel.SyscallStats();
      const int64_t start = MonotonicMicros();
      const int status = agents.empty()
                             ? kernel.HostWaitPid(kernel.Spawn(spawn))
                             : RunUnderAgents(kernel, agents, spawn);
      const int64_t elapsed = MonotonicMicros() - start;
      if (!WifExited(status) || WExitStatus(status) != 0) {
        std::fprintf(stderr, "workload failed under %s (status %#x)\n",
                     configs[i].name.c_str(), status);
      }
      if (run == 0) {
        continue;  // warm-up pass
      }
      stats[i].Add(static_cast<double>(elapsed) / 1e6);
      results[i].syscalls = kernel.TotalSyscallCount() - calls_before;
      results[i].stat_deltas = DiffSyscallStats(stats_before, kernel.SyscallStats());
    }
  }
  for (size_t i = 0; i < configs.size(); ++i) {
    // Median: one descheduled run must not swing a whole configuration.
    results[i].mean_seconds = stats[i].Median();
    results[i].stddev_seconds = stats[i].StdDev();
  }
  return results;
}

// Prints one row of a Tables 3-2/3-3 style report.
inline void PrintSlowdownRow(const std::string& agent_name, const WorkloadResult& result,
                             double baseline_seconds) {
  if (agent_name == "none") {
    std::printf("  %-12s %10.4f %8s   (±%.4f)  %8lld syscalls\n", agent_name.c_str(),
                result.mean_seconds, "-", result.stddev_seconds,
                static_cast<long long>(result.syscalls));
    return;
  }
  std::printf("  %-12s %10.4f %7.1f%%   (±%.4f)  %8lld syscalls\n", agent_name.c_str(),
              result.mean_seconds, PercentSlowdown(baseline_seconds, result.mean_seconds),
              result.stddev_seconds, static_cast<long long>(result.syscalls));
}

// Prints the `top_n` syscalls of a workload's per-syscall deltas, ranked by
// virtual time — where the workload's kernel time actually went. The dispatcher
// keeps these counters itself (lock-free, relaxed atomics), so the report costs
// the workload nothing.
inline void PrintTopSyscallDeltas(const std::string& label, const WorkloadResult& result,
                                  int top_n = 10) {
  std::vector<int> numbers;
  for (int number = 0; number < kMaxSyscall; ++number) {
    if (result.stat_deltas[static_cast<size_t>(number)].calls != 0) {
      numbers.push_back(number);
    }
  }
  std::sort(numbers.begin(), numbers.end(), [&result](int a, int b) {
    const auto& sa = result.stat_deltas[static_cast<size_t>(a)];
    const auto& sb = result.stat_deltas[static_cast<size_t>(b)];
    if (sa.vtime_usec != sb.vtime_usec) {
      return sa.vtime_usec > sb.vtime_usec;
    }
    return sa.calls > sb.calls;  // stable tie-break so the report is deterministic
  });
  if (numbers.size() > static_cast<size_t>(top_n)) {
    numbers.resize(static_cast<size_t>(top_n));
  }
  std::printf("\n  top %zu syscalls by virtual time, %s (last run):\n", numbers.size(),
              label.c_str());
  std::printf("    %10s %10s %14s  %s\n", "calls", "errors", "vtime(us)", "syscall");
  for (const int number : numbers) {
    const auto& stat = result.stat_deltas[static_cast<size_t>(number)];
    std::printf("    %10lld %10lld %14lld  %s\n", static_cast<long long>(stat.calls),
                static_cast<long long>(stat.errors), static_cast<long long>(stat.vtime_usec),
                std::string(SyscallName(number)).c_str());
  }
}

// Measures a per-call operation inside a simulated process: spawns a client that
// runs `op` `iterations` times and reports mean host-µs per operation.
inline double MeasurePerCallMicros(Kernel& kernel, const std::vector<AgentRef>& agents,
                                   const std::function<void(ProcessContext&)>& op,
                                   int iterations = 20000) {
  double per_call = 0;
  SpawnOptions options;
  options.body = [&op, &per_call, iterations](ProcessContext& ctx) {
    // Warm up.
    for (int i = 0; i < 200; ++i) {
      op(ctx);
    }
    const int64_t start = MonotonicMicros();
    for (int i = 0; i < iterations; ++i) {
      op(ctx);
    }
    per_call = static_cast<double>(MonotonicMicros() - start) / iterations;
    return 0;
  };
  const int status = agents.empty() ? kernel.HostWaitPid(kernel.Spawn(options))
                                    : RunUnderAgents(kernel, agents, options);
  if (!WifExited(status) || WExitStatus(status) != 0) {
    std::fprintf(stderr, "measurement process failed\n");
  }
  return per_call;
}

// Counts semicolons in a source file — the paper's statement metric ("Note: The
// actual metric used was to count semicolons").
int CountSemicolons(const std::string& host_path);
int CountSemicolonsInFiles(const std::vector<std::string>& relative_paths);

}  // namespace bench
}  // namespace ia

#endif  // BENCH_BENCH_UTIL_H_
