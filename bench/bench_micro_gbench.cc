// google-benchmark micro-benchmarks for the substrate primitives that determine
// the agents' costs: namei resolution, directory-entry packing, the filter
// codecs, and string/path helpers. These complement the paper tables with
// regression-trackable numbers for the pieces this reproduction adds.
#include <benchmark/benchmark.h>

#include "src/agents/codec.h"
#include "src/base/strings.h"
#include "src/kernel/direntry_codec.h"
#include "src/kernel/vfs.h"

namespace ia {
namespace {

// --- namei over path depth ------------------------------------------------------

void BM_NameiDepth(benchmark::State& state) {
  Filesystem fs;
  Cred cred;
  const int depth = static_cast<int>(state.range(0));
  std::string dir_path;
  for (int i = 0; i < depth - 1; ++i) {
    dir_path += StringPrintf("/component%d", i);
  }
  if (!dir_path.empty()) {
    fs.MkdirAll(dir_path);
  }
  const std::string file_path = dir_path + "/leaf";
  fs.InstallFile(file_path, "x");
  NameiEnv env{fs.root(), fs.root(), &cred};
  for (auto _ : state) {
    NameiResult nr;
    benchmark::DoNotOptimize(fs.Namei(env, file_path, NameiOp::kLookup, true, &nr));
  }
}
BENCHMARK(BM_NameiDepth)->Arg(1)->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Arg(12);

void BM_NameiSymlinkChain(benchmark::State& state) {
  Filesystem fs;
  Cred cred;
  fs.InstallFile("/target", "x");
  NameiEnv env{fs.root(), fs.root(), &cred};
  std::string prev = "/target";
  const int links = static_cast<int>(state.range(0));
  for (int i = 0; i < links; ++i) {
    const std::string link = StringPrintf("/link%d", i);
    Cred root;
    fs.Symlink(NameiEnv{fs.root(), fs.root(), &root}, prev, link);
    prev = link;
  }
  for (auto _ : state) {
    NameiResult nr;
    benchmark::DoNotOptimize(fs.Namei(env, prev, NameiOp::kLookup, true, &nr));
  }
}
BENCHMARK(BM_NameiSymlinkChain)->Arg(0)->Arg(2)->Arg(4)->Arg(8);

// --- directory entry packing ------------------------------------------------------

void BM_DirentEncodeDecode(benchmark::State& state) {
  const int entries = static_cast<int>(state.range(0));
  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(entries));
  for (int i = 0; i < entries; ++i) {
    names.push_back(StringPrintf("entry-%04d.c", i));
  }
  std::vector<char> buf(static_cast<size_t>(entries) * 64);
  for (auto _ : state) {
    size_t used = 0;
    for (int i = 0; i < entries; ++i) {
      EncodeDirent(static_cast<Ino>(i + 3), names[static_cast<size_t>(i)], buf.data(),
                   buf.size(), &used);
    }
    benchmark::DoNotOptimize(DecodeDirents(buf.data(), used).size());
  }
  state.SetItemsProcessed(state.iterations() * entries);
}
BENCHMARK(BM_DirentEncodeDecode)->Arg(8)->Arg(64)->Arg(512);

// --- codecs -------------------------------------------------------------------------

void BM_RleRoundTrip(benchmark::State& state) {
  RleCodec codec;
  std::string plain;
  const int size = static_cast<int>(state.range(0));
  for (int i = 0; i < size; ++i) {
    plain.push_back(static_cast<char>('a' + (i / 97) % 16));  // runs of 97
  }
  for (auto _ : state) {
    std::string decoded;
    const std::string encoded = codec.Encode(plain);
    codec.Decode(encoded, &decoded);
    benchmark::DoNotOptimize(decoded.size());
  }
  state.SetBytesProcessed(state.iterations() * size);
}
BENCHMARK(BM_RleRoundTrip)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_XorRoundTrip(benchmark::State& state) {
  XorCodec codec(0xfeedface);
  const std::string plain(static_cast<size_t>(state.range(0)), 'q');
  for (auto _ : state) {
    std::string decoded;
    const std::string encoded = codec.Encode(plain);
    codec.Decode(encoded, &decoded);
    benchmark::DoNotOptimize(decoded.size());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_XorRoundTrip)->Arg(1024)->Arg(16384)->Arg(262144);

// --- path helpers ----------------------------------------------------------------------

void BM_LexicallyClean(benchmark::State& state) {
  const std::string p = "/usr//local/./bin/../bin/./tool";
  for (auto _ : state) {
    benchmark::DoNotOptimize(path::LexicallyClean(p));
  }
}
BENCHMARK(BM_LexicallyClean);

void BM_FilesystemCreateUnlink(benchmark::State& state) {
  Filesystem fs;
  Cred cred;
  fs.MkdirAll("/work");
  NameiEnv env{fs.root(), fs.root(), &cred};
  int i = 0;
  for (auto _ : state) {
    const std::string name = StringPrintf("/work/f%d", i++ % 64);
    InodeRef inode;
    fs.Open(env, name, kOCreat | kOWronly, 0644, &inode);
    fs.Unlink(env, name);
  }
}
BENCHMARK(BM_FilesystemCreateUnlink);

}  // namespace
}  // namespace ia

BENCHMARK_MAIN();
