// Directory name-lookup cache (DNLC) benchmark — the namei fast path.
//
// Pathname syscalls are the 900-cost-unit rows of Table 3-5; the real 4.3BSD
// kernel made them affordable with a name cache, and so does this kernel.
// Three workloads, each measured with the cache off and on:
//
//   1. stat-heavy repeated lookups of deep (8-component) paths through wide
//      directories — the DNLC's home turf; self-check: >= 1.3x speedup warm;
//   2. cold vs warm pass with the cache on — shows the first-touch miss cost;
//   3. mutation churn (creat/unlink/rename interleaved with lookups) —
//      self-checks: byte-identical syscall results cache-on vs cache-off, and
//      no warm-path regression beyond a noise margin.
//
// Exit status is nonzero if any self-check fails, so this binary doubles as a
// perf regression gate.
#include <cstdio>
#include <string>
#include <vector>

#include "src/base/clock.h"
#include "src/base/stats.h"
#include "src/kernel/vfs.h"

namespace {

constexpr int kDepth = 8;       // components per path, like the paper's "6 components" row
constexpr int kWidth = 2000;    // sibling entries per directory level (big-directory case)
constexpr int kLeafFiles = 64;  // files stat'ed in the deepest directory
constexpr int kStatReps = 150;  // passes over the leaf set per timed run
constexpr int kAttempts = 3;    // min-of-N: host scheduling noise only adds time

// Builds a deep chain /p0/p1/.../p7 where every level also holds kWidth dummy
// siblings (so uncached per-component search has real work to do), and
// kLeafFiles files at the bottom. Returns the leaf paths.
std::vector<std::string> BuildTree(ia::Filesystem& fs) {
  std::string dir_path;
  for (int level = 0; level < kDepth - 1; ++level) {
    dir_path += "/pathname-component-" + std::to_string(level);
    fs.MkdirAll(dir_path);
    for (int i = 0; i < kWidth; ++i) {
      fs.InstallFile(dir_path + "/sibling-entry-" + std::to_string(i), "");
    }
  }
  std::vector<std::string> leaves;
  leaves.reserve(kLeafFiles);
  for (int i = 0; i < kLeafFiles; ++i) {
    const std::string leaf = dir_path + "/leaf-" + std::to_string(i);
    fs.InstallFile(leaf, "x");
    leaves.push_back(leaf);
  }
  return leaves;
}

// One timed pass of repeated stats over `paths`; returns seconds.
double TimeStatPass(ia::Filesystem& fs, const std::vector<std::string>& paths, int reps) {
  ia::Cred cred;
  ia::NameiEnv env{fs.root(), fs.root(), &cred};
  ia::Stat st;
  const int64_t start = ia::MonotonicMicros();
  for (int r = 0; r < reps; ++r) {
    for (const std::string& p : paths) {
      if (fs.Stat(env, p, /*follow=*/true, &st) != 0) {
        std::fprintf(stderr, "stat(%s) failed\n", p.c_str());
      }
    }
  }
  return static_cast<double>(ia::MonotonicMicros() - start) / 1e6;
}

// Min-of-attempts stat timing with the cache in the given state. The cache is
// cleared before the warm-up pass so "warm" means "warmed by this config".
double MeasureStatSeconds(ia::Filesystem& fs, const std::vector<std::string>& paths,
                          bool cache_on) {
  fs.namecache().set_enabled(cache_on);
  fs.namecache().Clear();
  double best = 1e18;
  TimeStatPass(fs, paths, 1);  // warm-up (fills the cache when enabled)
  for (int i = 0; i < kAttempts; ++i) {
    best = std::min(best, TimeStatPass(fs, paths, kStatReps));
  }
  return best;
}

// Mutation-churn script: interleaves creates, lookups, unlinks and renames.
// Every syscall result (and resolved inode size) is appended to `trace` so two
// runs can be compared byte-for-byte.
void RunChurn(ia::Filesystem& fs, std::vector<int64_t>* trace) {
  ia::Cred cred;
  ia::NameiEnv env{fs.root(), fs.root(), &cred};
  fs.MkdirAll("/churn");
  ia::Stat st;
  for (int i = 0; i < 4000; ++i) {
    const std::string name = "/churn/file-" + std::to_string(i % 97);
    ia::InodeRef out;
    trace->push_back(fs.Open(env, name, ia::kOCreat | ia::kORdwr, 0644, &out));
    if (out != nullptr) {
      fs.ResizeFile(out, (i % 13) * 16);
    }
    trace->push_back(fs.Stat(env, name, true, &st));
    trace->push_back(st.st_size);
    if (i % 3 == 0) {
      trace->push_back(fs.Unlink(env, name));
      trace->push_back(fs.Stat(env, name, true, &st));
    }
    if (i % 5 == 0) {
      trace->push_back(fs.Rename(env, name, "/churn/renamed"));
      trace->push_back(fs.Stat(env, "/churn/renamed", true, &st));
      trace->push_back(st.st_ino);
    }
    if (i % 11 == 0) {
      trace->push_back(fs.Stat(env, "/churn/never-created", true, &st));
    }
  }
}

double MeasureChurnSeconds(bool cache_on, std::vector<int64_t>* trace) {
  double best = 1e18;
  for (int i = 0; i < kAttempts; ++i) {
    ia::Filesystem fs;
    fs.namecache().set_enabled(cache_on);
    std::vector<int64_t> t;
    const int64_t start = ia::MonotonicMicros();
    RunChurn(fs, &t);
    best = std::min(best, static_cast<double>(ia::MonotonicMicros() - start) / 1e6);
    if (i == 0) {
      *trace = std::move(t);
    }
  }
  return best;
}

}  // namespace

int main() {
  std::printf("DNLC benchmark: namei fast path, cache off vs on\n");
  std::printf("(deep paths: %d components, %d siblings/level, %d leaves, %d reps)\n\n", kDepth,
              kWidth, kLeafFiles, kStatReps);

  bool ok = true;

  // --- 1: stat-heavy repeated lookups --------------------------------------
  ia::Filesystem fs;
  const std::vector<std::string> leaves = BuildTree(fs);

  const double off_s = MeasureStatSeconds(fs, leaves, /*cache_on=*/false);
  const double on_s = MeasureStatSeconds(fs, leaves, /*cache_on=*/true);
  const double speedup = off_s / on_s;
  const int64_t stats_done = static_cast<int64_t>(kStatReps) * kLeafFiles;

  std::printf("  stat-heavy (warm):\n");
  std::printf("    cache off   %8.4f s   %7.3f µs/stat\n", off_s, off_s * 1e6 / stats_done);
  std::printf("    cache on    %8.4f s   %7.3f µs/stat\n", on_s, on_s * 1e6 / stats_done);
  std::printf("    speedup     %8.2fx   (self-check: >= 1.30x)\n", speedup);
  if (speedup < 1.30) {
    std::printf("    FAIL: warm repeated-lookup speedup below 1.3x\n");
    ok = false;
  }

  const ia::NameCacheStats stats = fs.namecache().stats();
  std::printf(
      "    counters: %llu hits, %llu neg-hits, %llu misses, %llu inserts,\n"
      "              %llu evictions, %llu invalidations, %zu/%zu entries\n",
      static_cast<unsigned long long>(stats.hits),
      static_cast<unsigned long long>(stats.negative_hits),
      static_cast<unsigned long long>(stats.misses),
      static_cast<unsigned long long>(stats.insertions),
      static_cast<unsigned long long>(stats.evictions),
      static_cast<unsigned long long>(stats.invalidations), stats.size, stats.capacity);

  // --- 2: cold vs warm with the cache on -----------------------------------
  fs.namecache().set_enabled(true);
  fs.namecache().Clear();
  const double cold_s = TimeStatPass(fs, leaves, 1);
  const double warm_s = TimeStatPass(fs, leaves, 1);
  std::printf("\n  cold vs warm (cache on, one pass over %d leaves):\n", kLeafFiles);
  std::printf("    cold (all misses)  %8.5f s\n", cold_s);
  std::printf("    warm (all hits)    %8.5f s\n", warm_s);

  // --- 3: mutation churn ----------------------------------------------------
  std::vector<int64_t> trace_off;
  std::vector<int64_t> trace_on;
  const double churn_off_s = MeasureChurnSeconds(/*cache_on=*/false, &trace_off);
  const double churn_on_s = MeasureChurnSeconds(/*cache_on=*/true, &trace_on);

  std::printf("\n  mutation churn (creat/unlink/rename interleaved with stats):\n");
  std::printf("    cache off   %8.4f s\n", churn_off_s);
  std::printf("    cache on    %8.4f s   (%+.1f%%)\n", churn_on_s,
              ia::PercentSlowdown(churn_off_s, churn_on_s));
  if (trace_on == trace_off) {
    std::printf("    results: byte-identical across %zu recorded values (PASS)\n",
                trace_on.size());
  } else {
    std::printf("    FAIL: cache-on and cache-off churn results diverge\n");
    ok = false;
  }
  // Mutation-heavy workloads pay a bounded cache-maintenance tax (the BSD
  // DNLC accepted the same trade: real workloads are lookup-dominated). The
  // gate only rejects a blow-up; the hard requirement above is correctness.
  if (churn_on_s > churn_off_s * 1.5) {
    std::printf("    FAIL: churn workload regressed more than 50%% with the cache on\n");
    ok = false;
  } else {
    std::printf("    timing: within the no-regression margin (PASS)\n");
  }

  std::printf("\n%s\n", ok ? "ALL SELF-CHECKS PASSED" : "SELF-CHECK FAILURES (see above)");
  return ok ? 0 : 1;
}
