// Ablation: the price of each toolkit abstraction layer (DESIGN.md §5).
//
// The same do-nothing agent written at four layers — numeric (layer 0), symbolic
// (layer 1), descriptor (layer 2), pathname (layer 2) — measured on a cheap call
// (getpid), a descriptor call (fstat), and a pathname call (stat). Higher layers
// buy abstraction with a per-call decode/object cost; the paper's advice is that
// "the agent writer decides what layers of toolkit objects are appropriate to
// the particular task and includes only those toolkit objects."
#include <cstdio>

#include "bench/bench_util.h"
#include "src/toolkit/toolkit.h"

namespace {

class NoopNumeric final : public ia::NumericSyscall {
 public:
  std::string name() const override { return "noop_numeric"; }

 protected:
  void init(ia::ProcessContext&) override { register_interest_all(); }
};

class NoopSymbolic final : public ia::SymbolicSyscall {
 public:
  std::string name() const override { return "noop_symbolic"; }
};

class NoopDescriptor final : public ia::DescriptorSet {
 public:
  std::string name() const override { return "noop_descriptor"; }
};

class NoopPathname final : public ia::PathnameSet {
 public:
  std::string name() const override { return "noop_pathname"; }
};

}  // namespace

int main() {
  struct Layer {
    const char* name;
    ia::bench::AgentFactory factory;
  };
  const Layer layers[] = {
      {"(no agent)", nullptr},
      {"numeric (layer 0)",
       [] { return std::vector<ia::AgentRef>{std::make_shared<NoopNumeric>()}; }},
      {"symbolic (layer 1)",
       [] { return std::vector<ia::AgentRef>{std::make_shared<NoopSymbolic>()}; }},
      {"descriptor (layer 2)",
       [] { return std::vector<ia::AgentRef>{std::make_shared<NoopDescriptor>()}; }},
      {"pathname (layer 2)",
       [] { return std::vector<ia::AgentRef>{std::make_shared<NoopPathname>()}; }},
  };

  std::printf("Ablation: per-call cost (µs) of a transparent agent at each toolkit layer\n\n");
  std::printf("  %-22s %12s %12s %12s\n", "Layer", "getpid()", "fstat()", "stat()");

  for (const Layer& layer : layers) {
    ia::Kernel kernel;
    kernel.fs().MkdirAll("/a/b/c/d/e");
    kernel.fs().InstallFile("/a/b/c/d/e/f", "contents");
    const std::vector<ia::AgentRef> agents =
        layer.factory != nullptr ? layer.factory() : std::vector<ia::AgentRef>{};

    const double getpid_us = ia::bench::MeasurePerCallMicros(
        kernel, agents, [](ia::ProcessContext& ctx) { ctx.Getpid(); }, 100000);
    const double fstat_us = ia::bench::MeasurePerCallMicros(
        kernel, agents,
        [](ia::ProcessContext& ctx) {
          static thread_local int fd = -1;
          if (fd < 0) {
            fd = ctx.Open("/a/b/c/d/e/f", ia::kORdonly);
          }
          ia::Stat st;
          ctx.Fstat(fd, &st);
        },
        100000);
    const double stat_us = ia::bench::MeasurePerCallMicros(
        kernel, agents,
        [](ia::ProcessContext& ctx) {
          ia::Stat st;
          ctx.Stat("/a/b/c/d/e/f", &st);
        },
        50000);
    std::printf("  %-22s %10.3f µs %10.3f µs %10.3f µs\n", layer.name, getpid_us, fstat_us,
                stat_us);
  }

  std::printf(
      "\nExpected shape: cost grows modestly with layer height; the numeric layer\n"
      "adds only dispatch; symbolic adds decode; descriptor/pathname add object\n"
      "lookup and (for stat) pathname-object construction.\n");
  return 0;
}
