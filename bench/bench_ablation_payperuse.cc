// Ablation: the pay-per-use property (paper §3.4.2: "Calls not intercepted by
// interposition agents go directly to the underlying system and result in no
// additional overhead") and the cost of stacking agents (Figures 1-3/1-4).
//
//   Part 1: getpid() cost with (a) no agent, (b) an agent interested only in
//           gettimeofday — (b) must cost the same as (a).
//   Part 2: getpid() cost under stacks of 1..4 pass-through interceptors — cost
//           should grow linearly with the number of interested frames.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/toolkit/toolkit.h"

namespace {

// Interested ONLY in gettimeofday; getpid must fly past untouched.
class GtodOnlyAgent final : public ia::NumericSyscall {
 public:
  std::string name() const override { return "gtod_only"; }

 protected:
  void init(ia::ProcessContext&) override { register_interest(ia::kSysGettimeofday); }
};

// Pass-through interceptor of everything.
class PassthroughAgent final : public ia::NumericSyscall {
 public:
  std::string name() const override { return "passthrough"; }

 protected:
  void init(ia::ProcessContext&) override { register_interest_all(); }
};

double GetpidCost(const std::vector<ia::AgentRef>& agents) {
  // Take the minimum of several measurements: scheduling noise only adds time.
  double best = 1e9;
  for (int attempt = 0; attempt < 5; ++attempt) {
    ia::Kernel kernel;
    const double us = ia::bench::MeasurePerCallMicros(
        kernel, agents, [](ia::ProcessContext& ctx) { ctx.Getpid(); }, 200000);
    best = std::min(best, us);
  }
  return best;
}

}  // namespace

int main() {
  std::printf("Ablation: pay-per-use interception and agent stacking\n\n");

  const double bare_us = GetpidCost({});
  const double uninterested_us = GetpidCost({std::make_shared<GtodOnlyAgent>()});
  std::printf("Part 1 — pay-per-use (getpid, agent interested only in gettimeofday):\n");
  std::printf("  %-40s %10.3f µs\n", "no agent", bare_us);
  std::printf("  %-40s %10.3f µs\n", "agent present, call not intercepted", uninterested_us);
  const double rel = bare_us > 0 ? (uninterested_us - bare_us) / bare_us * 100.0 : 0.0;
  std::printf("  absolute difference: %+.3f µs (a constant ~tens-of-ns stack scan;\n"
              "  the paper's kernel redirection made uncaught calls exactly free)\n\n",
              uninterested_us - bare_us);
  (void)rel;

  std::printf("Part 2 — stacked pass-through agents (getpid):\n");
  std::printf("  %-40s %10s %12s\n", "stack depth", "µs/call", "µs/frame");
  double depth1_us = 0;
  for (int depth = 0; depth <= 4; ++depth) {
    std::vector<ia::AgentRef> agents;
    for (int i = 0; i < depth; ++i) {
      agents.push_back(std::make_shared<PassthroughAgent>());
    }
    const double us = GetpidCost(agents);
    if (depth == 1) {
      depth1_us = us;
    }
    const double per_frame = depth > 0 ? (us - bare_us) / depth : 0.0;
    std::printf("  %-40d %10.3f %12.3f\n", depth, us, per_frame);
  }
  (void)depth1_us;

  std::printf(
      "\nExpected shape: part 1 rows are equal (uncaught calls are free); part 2\n"
      "cost rises ~linearly — each interested frame adds one dispatch+forward.\n");
  return 0;
}
