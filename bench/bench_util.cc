#include "bench/bench_util.h"

#include <fstream>

#ifndef IA_SOURCE_DIR
#define IA_SOURCE_DIR "."
#endif

namespace ia {
namespace bench {

int CountSemicolons(const std::string& host_path) {
  std::ifstream in(host_path, std::ios::binary);
  if (!in) {
    return -1;
  }
  int count = 0;
  char c;
  while (in.get(c)) {
    if (c == ';') {
      ++count;
    }
  }
  return count;
}

int CountSemicolonsInFiles(const std::vector<std::string>& relative_paths) {
  int total = 0;
  for (const std::string& relative : relative_paths) {
    const int count = CountSemicolons(std::string(IA_SOURCE_DIR) + "/" + relative);
    if (count > 0) {
      total += count;
    }
  }
  return total;
}

}  // namespace bench
}  // namespace ia
