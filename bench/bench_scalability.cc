// Multi-client scalability benchmark — the gate for the big-lock breakup.
//
// N simulated client processes (1..64), each on its own host thread, run an
// identical stat/open/read/getpid mix against a shared kernel. Before the
// lock split every call serialized on the big kernel lock, so aggregate
// throughput was flat in N; with kPerProcess rows dispatching lock-free and
// kVfsRead rows walking under the shared-mode tree lock, throughput should
// scale with host cores.
//
// Beyond the per-thread curve, a POOLED curve extends the client count to
// 256: a bounded worker pool (so the world stays runnable under TSan and on
// modest hosts) multiplexes the per-client working sets — worker w executes
// clients {w, w+W, ...} round-robin. The curve gates on monotone
// non-decreasing throughput 16 -> 64 -> 128 -> 256: more client state must
// not collapse the locks even when parallelism is capped.
//
// Two ring-plane comparisons ride along: MPSC submission (S sibling threads
// feeding one shared ring vs the owner issuing the same calls per-call) and
// cross-stripe drain overlap (batch_stripe_overlap on vs off on a read-heavy
// reorderable batch mix at 64 clients).
//
// Two self-checks (exit status is nonzero if either fails):
//
//   1. Scalability: aggregate syscall throughput at 8 clients >= 2.5x the
//      1-client throughput. Only enforced when the host has >= 8 hardware
//      threads — on smaller hosts the kernel cannot scale past the machine,
//      so the gate reports "skipped" (the curve is still printed/emitted).
//   2. Single-client parity: the uncontended fast paths must not cost more
//      than the big-lock-only dispatch they replaced. Installing an EMPTY
//      fault plan forces every dispatch through the pre-change big-lock
//      regime (see kernel.h), so the same binary measures both worlds on the
//      same host: fast-path latency must be <= 1.10x the big-lock latency
//      for each Table 3-5-style operation. This is the host-independent form
//      of "within 10% of the pre-change baseline".
//
// Alongside the human table the bench emits one JSON object per line
// (clients/throughput/speedup and one per parity row) so future changes can
// track the scaling curve the way the Table 3-5 rows are tracked.
#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/agents/chaos.h"
#include "src/apps/batch.h"
#include "src/agents/dfs_trace.h"
#include "src/agents/filter_fs.h"
#include "src/agents/retry.h"
#include "src/agents/sandbox.h"
#include "src/agents/txn.h"
#include "src/agents/union_fs.h"
#include "src/base/clock.h"
#include "src/kernel/context.h"
#include "src/kernel/kernel.h"
#include "src/toolkit/footprint.h"

// Under ThreadSanitizer the bench still runs in full (its job there is race
// coverage: N clients hammering every fast path), but the perf gates are not
// enforced — TSan's instrumentation taxes atomic-dense code hardest, which
// skews exactly the ratios the gates measure.
#if defined(__SANITIZE_THREAD__)
#define IA_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define IA_UNDER_TSAN 1
#endif
#endif
#ifndef IA_UNDER_TSAN
#define IA_UNDER_TSAN 0
#endif

namespace {

constexpr bool kUnderTsan = IA_UNDER_TSAN != 0;
constexpr int kClientCounts[] = {1, 2, 4, 8, 16, 32, 64};
constexpr int kFilesPerClient = 8;
constexpr int kIterations = 4000;  // mix iterations per client (9 syscalls each)
constexpr int kAttempts = 3;       // best-of-N against host scheduling noise
// The pay-per-use/compiled-route gates compare two sub-µs measurements whose
// ratio sits within a 3% margin, so the mix takes more attempts to converge on
// the true minimum than the coarser curve/parity measurements need.
constexpr int kMixAttempts = 6;
constexpr double kSpeedupGateAt8 = 2.5;
constexpr double kParityMargin = 1.10;
// Tightened from 5.0 when dispatch moved to compiled routes: the narrowed
// stack no longer pays the per-frame interest scan, so the measured margin
// rose from ~5.9x to ~7.7x. 6.5 keeps headroom for host noise.
constexpr double kPayPerUseGate = 6.5;
// Compiled-route gate: with flattened routes, a footprint-narrowed 7-agent
// stack must dispatch a non-path per-process mix at bare-kernel speed — at
// most 3% over the agentless kernel (it was 1.06x under the per-frame scan).
constexpr double kCompiledRouteGate = 1.03;
// Ring gate: at 16 clients a batched mixed workload must clear 2x the
// per-call throughput of the identical call sequence — the amortized batch
// prologue (one clock advance / rusage update / stats flush per run) is what
// the submission ring buys under contention. Enforced on >= 16-core hosts.
constexpr double kRingGateAt16 = 2.0;
// Stripe gate: a 64-client directory-heavy mix on the default striped tree
// lock must scale at least 1.5x over the same kernel pinned to one stripe
// (the pre-change single shared_mutex), whose reader-count cacheline
// flatlines the curve. Enforced on >= 16-core hosts.
constexpr double kStripeGateAt64 = 1.5;
// Ring parity gate: at 1 client a batch must never LOSE to per-call issue.
// (It once did, 0.84x: the batch prologue zeroed ~6KB of per-number stat
// arrays per flush; the compact accumulator plus the singleton fallthrough
// fixed it.) 0.95 leaves room for measurement noise only.
constexpr double kRingParityGateAt1 = 0.95;
// Pooled curve: client counts multiplexed over at most kPoolWorkerCap worker
// threads. Monotone gate: each step of the 16->64->128->256 curve must hold
// at least kMonotoneTolerance of the previous point's throughput — growing
// the client population (more directories, more descriptors, more cache
// state) must not collapse aggregate throughput.
constexpr int kPooledClientCounts[] = {16, 64, 128, 256};
constexpr int kPoolWorkerCap = IA_UNDER_TSAN ? 8 : 32;
constexpr double kMonotoneTolerance = 0.95;
// MPSC gate: at 16 submitters the shared-ring arrangement (siblings enqueue,
// owner drains in batches) must clear 1.5x the owner issuing the identical
// call sequence per-call — concurrent submission has to buy batch
// amortization, not just move the enqueue cost around. Enforced on >= 16-core
// hosts.
constexpr double kMpscGateAt16 = 1.5;
constexpr int kMpscSubmitterCounts[] = {4, 16};
// Cross-stripe overlap gate: the read-heavy reorderable batch mix at 64
// clients must run >= 1.3x faster with batch_stripe_overlap on than with the
// strict in-order dispatcher — one shared stripe acquire per group instead of
// one per entry. Enforced on >= 16-core hosts.
constexpr double kOverlapGateAt64 = 1.3;

// Iterations per client, scaled down as the client count grows so the
// many-client points (and TSan runs, which tax atomics hardest) stay
// time-bounded; throughput is per-second, so the curve is unaffected.
int ItersFor(int n, int base) {
  const int scaled = base * 8 / std::max(8, n);
  return kUnderTsan ? std::max(scaled / 4, 50) : scaled;
}

// Installs each client's private file set plus one shared read target.
void BuildTree(ia::Kernel& kernel, int max_clients) {
  kernel.fs().InstallFile("/etc/motd", std::string(512, 'm'));
  for (int c = 0; c < max_clients; ++c) {
    const std::string dir = "/data/c" + std::to_string(c);
    kernel.fs().MkdirAll(dir);
    for (int f = 0; f < kFilesPerClient; ++f) {
      kernel.fs().InstallFile(dir + "/f" + std::to_string(f), std::string(1024, 'x'));
    }
  }
}

// The per-client mix: 9 syscalls per iteration, all on the lock-free or
// shared-tree fast paths (getpid/gettimeofday per-process; stat/open/read/
// fstat/close read-only VFS). Clients mostly touch their own directory — the
// many-client regime the ROADMAP's "millions of users" north star implies —
// plus one shared hot file everyone stats.
int ClientBody(ia::ProcessContext& ctx, int id, const std::atomic<bool>* go,
               std::atomic<int>* ready, int iterations) {
  ready->fetch_add(1, std::memory_order_acq_rel);
  while (!go->load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  char buf[1024];
  ia::Stat st;
  ia::TimeVal tv;
  const std::string dir = "/data/c" + std::to_string(id);
  for (int it = 0; it < iterations; ++it) {
    const std::string file = dir + "/f" + std::to_string(it % kFilesPerClient);
    ctx.Getpid();
    ctx.Getpid();
    ctx.Gettimeofday(&tv, nullptr);
    if (ctx.Stat(file, &st) != 0 || ctx.Stat("/etc/motd", &st) != 0) {
      return 1;
    }
    const int fd = ctx.Open(file, ia::kORdonly);
    if (fd < 0 || ctx.Read(fd, buf, sizeof buf) != static_cast<int64_t>(sizeof buf)) {
      return 2;
    }
    if (ctx.Fstat(fd, &st) != 0 || ctx.Close(fd) != 0) {
      return 3;
    }
  }
  return 0;
}

struct Point {
  int clients = 0;
  int64_t syscalls = 0;
  double seconds = 0;
  double throughput = 0;  // syscalls per host-second, best attempt
};

// Runs one timed world: N client processes built by `make_body(id)` racing
// against a shared kernel configured by `config`, with a tree installed for
// `tree_clients` client directories (== n except for the pooled curve, where
// fewer workers multiplex more client working sets). Returns the
// best-of-kAttempts point.
Point MeasureWorld(int n, int tree_clients, const ia::KernelConfig& config,
                   const std::function<std::function<int(ia::ProcessContext&)>(
                       int, const std::atomic<bool>*, std::atomic<int>*)>& make_body) {
  Point best;
  best.clients = n;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    ia::Kernel kernel(config);
    BuildTree(kernel, tree_clients);
    std::atomic<bool> go{false};
    std::atomic<int> ready{0};
    std::vector<ia::Pid> pids;
    pids.reserve(n);
    for (int c = 0; c < n; ++c) {
      ia::SpawnOptions options;
      options.body = make_body(c, &go, &ready);
      pids.push_back(kernel.Spawn(options));
    }
    while (ready.load(std::memory_order_acquire) < n) {
      std::this_thread::yield();
    }
    const int64_t calls_before = kernel.TotalSyscallCount();
    const int64_t start = ia::MonotonicMicros();
    go.store(true, std::memory_order_release);
    for (const ia::Pid pid : pids) {
      const int status = kernel.HostWaitPid(pid);
      if (!ia::WifExited(status) || ia::WExitStatus(status) != 0) {
        std::fprintf(stderr, "client %d failed (status %#x)\n", pid, status);
      }
    }
    const double seconds = static_cast<double>(ia::MonotonicMicros() - start) / 1e6;
    const int64_t syscalls = kernel.TotalSyscallCount() - calls_before;
    const double throughput = seconds > 0 ? static_cast<double>(syscalls) / seconds : 0;
    if (throughput > best.throughput) {
      best.syscalls = syscalls;
      best.seconds = seconds;
      best.throughput = throughput;
    }
  }
  return best;
}

Point MeasureClients(int n) {
  const int iterations = ItersFor(n, kIterations);
  return MeasureWorld(n, n, ia::KernelConfig{},
                      [iterations](int c, const std::atomic<bool>* go, std::atomic<int>* ready) {
                        return [c, go, ready, iterations](ia::ProcessContext& ctx) {
                          return ClientBody(ctx, c, go, ready, iterations);
                        };
                      });
}

// --- pooled curve: 256 client working sets over a bounded worker pool ---------
//
// Worker w multiplexes clients {w, w+W, w+2W, ...}: each pass of its loop runs
// one iteration of the standard 9-syscall mix for each assigned client. The
// syscall stream the kernel sees is the same as the per-thread curve's — only
// the host-thread count is capped, which is what lets a 256-client world run
// under TSan and on small hosts at all.
int PooledWorkerBody(ia::ProcessContext& ctx, int worker, int workers, int clients,
                     const std::atomic<bool>* go, std::atomic<int>* ready, int iterations) {
  ready->fetch_add(1, std::memory_order_acq_rel);
  while (!go->load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  char buf[1024];
  ia::Stat st;
  ia::TimeVal tv;
  for (int it = 0; it < iterations; ++it) {
    for (int c = worker; c < clients; c += workers) {
      const std::string dir = "/data/c" + std::to_string(c);
      const std::string file = dir + "/f" + std::to_string(it % kFilesPerClient);
      ctx.Getpid();
      ctx.Getpid();
      ctx.Gettimeofday(&tv, nullptr);
      if (ctx.Stat(file, &st) != 0 || ctx.Stat("/etc/motd", &st) != 0) {
        return 1;
      }
      const int fd = ctx.Open(file, ia::kORdonly);
      if (fd < 0 || ctx.Read(fd, buf, sizeof buf) != static_cast<int64_t>(sizeof buf)) {
        return 2;
      }
      if (ctx.Fstat(fd, &st) != 0 || ctx.Close(fd) != 0) {
        return 3;
      }
    }
  }
  return 0;
}

struct PooledPoint {
  int clients = 0;
  int workers = 0;
  double throughput = 0;
};

PooledPoint MeasurePooledClients(int n) {
  const int workers = std::min(n, kPoolWorkerCap);
  const int iterations = ItersFor(n, kIterations);
  const Point p = MeasureWorld(
      workers, n, ia::KernelConfig{},
      [workers, n, iterations](int w, const std::atomic<bool>* go, std::atomic<int>* ready) {
        return [w, workers, n, go, ready, iterations](ia::ProcessContext& ctx) {
          return PooledWorkerBody(ctx, w, workers, n, go, ready, iterations);
        };
      });
  PooledPoint point;
  point.clients = n;
  point.workers = workers;
  point.throughput = p.throughput;
  return point;
}

// --- ring vs per-call: the batched mixed workload -----------------------------
//
// Each iteration opens a private file synchronously (its fd feeds the
// fd-keyed entries), then issues stat/fstat/lseek/read/getpid/close — either
// one call at a time or as a single ring batch through BatchClient. Both
// variants issue the identical 7-syscall sequence, so throughput is directly
// comparable; the ring variant pays the dispatch prologue once per batch.
int MixedClientBody(ia::ProcessContext& ctx, int id, const std::atomic<bool>* go,
                    std::atomic<int>* ready, bool via_ring, int iterations) {
  ready->fetch_add(1, std::memory_order_acq_rel);
  while (!go->load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  char buf[1024];
  ia::Stat st;
  ia::Stat fst;
  const std::string dir = "/data/c" + std::to_string(id);
  ia::BatchClient batch(ctx, 64);
  for (int it = 0; it < iterations; ++it) {
    const std::string file = dir + "/f" + std::to_string(it % kFilesPerClient);
    const int fd = ctx.Open(file, ia::kORdonly);
    if (fd < 0) {
      return 1;
    }
    if (via_ring) {
      batch.PushStat(file.c_str(), &st, 0);
      batch.PushFstat(fd, &fst, 1);
      batch.PushLseek(fd, 0, ia::kSeekSet, 2);
      batch.PushRead(fd, buf, sizeof buf, 3);
      batch.PushGetpid(4);
      batch.PushClose(fd, 5);
      if (batch.Flush() != 6 ||
          batch.completions()[3].result.rv[0] != static_cast<int64_t>(sizeof buf)) {
        return 2;
      }
    } else {
      if (ctx.Stat(file, &st) != 0 || ctx.Fstat(fd, &fst) != 0) {
        return 2;
      }
      ctx.Lseek(fd, 0, ia::kSeekSet);
      if (ctx.Read(fd, buf, sizeof buf) != static_cast<int64_t>(sizeof buf)) {
        return 3;
      }
      ctx.Getpid();
      ctx.Close(fd);
    }
  }
  return 0;
}

struct RingPoint {
  int clients = 0;
  double percall_tp = 0;
  double ring_tp = 0;
  double speedup = 0;
};

RingPoint MeasureRingPoint(int n) {
  const int iterations = ItersFor(n, kIterations / 2);
  const auto factory = [iterations](bool via_ring) {
    return [via_ring, iterations](int c, const std::atomic<bool>* go, std::atomic<int>* ready) {
      return [c, go, ready, via_ring, iterations](ia::ProcessContext& ctx) {
        return MixedClientBody(ctx, c, go, ready, via_ring, iterations);
      };
    };
  };
  RingPoint point;
  point.clients = n;
  point.percall_tp = MeasureWorld(n, n, ia::KernelConfig{}, factory(false)).throughput;
  point.ring_tp = MeasureWorld(n, n, ia::KernelConfig{}, factory(true)).throughput;
  point.speedup = point.percall_tp > 0 ? point.ring_tp / point.percall_tp : 0;
  return point;
}

// --- MPSC: S sibling submitters sharing one ring vs the owner per-call --------
//
// Both variants issue the identical stat/fstat/lseek/read stream over S
// pre-opened descriptors. Per-call: the owner thread walks the S lanes
// synchronously. MPSC: S sibling host threads SubmitBlocking into the shared
// ring while the owner drains and reaps — execution still happens only on the
// owner's drain, so any speedup is batch amortization plus submission
// overlapping execution, not extra execution parallelism.
int MpscOwnerBody(ia::ProcessContext& ctx, int submitters, bool via_ring,
                  const std::atomic<bool>* go, std::atomic<int>* ready, int iterations) {
  struct Lane {
    std::string file;
    int fd = -1;
    ia::Stat st{};
    ia::Stat fst{};
    char buf[256] = {};
  };
  std::vector<std::unique_ptr<Lane>> lanes;
  for (int t = 0; t < submitters; ++t) {
    auto lane = std::make_unique<Lane>();
    lane->file = "/data/c0/f" + std::to_string(t % kFilesPerClient);
    lane->fd = ctx.Open(lane->file, ia::kORdonly);
    if (lane->fd < 0) {
      return 1;
    }
    lanes.push_back(std::move(lane));
  }
  ready->fetch_add(1, std::memory_order_acq_rel);
  while (!go->load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  int failures = 0;
  if (!via_ring) {
    for (int it = 0; it < iterations; ++it) {
      for (int t = 0; t < submitters; ++t) {
        Lane& lane = *lanes[static_cast<size_t>(t)];
        if (ctx.Stat(lane.file, &lane.st) != 0 || ctx.Fstat(lane.fd, &lane.fst) != 0 ||
            ctx.Lseek(lane.fd, 0, ia::kSeekSet) != 0 ||
            ctx.Read(lane.fd, lane.buf, sizeof lane.buf) !=
                static_cast<int64_t>(sizeof lane.buf)) {
          ++failures;
        }
      }
    }
  } else {
    ia::SyscallRing& ring = ctx.Ring(256);
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(submitters));
    for (int t = 0; t < submitters; ++t) {
      threads.emplace_back([&ring, &lanes, t, iterations] {
        Lane& lane = *lanes[static_cast<size_t>(t)];
        for (int it = 0; it < iterations; ++it) {
          ia::SyscallArgs args;
          args.SetPtr(0, lane.file.c_str());
          args.SetPtr(1, &lane.st);
          ia::BatchClient::SubmitBlocking(ring, ia::kSysStat, args);
          args = ia::SyscallArgs{};
          args.SetInt(0, lane.fd);
          args.SetPtr(1, &lane.fst);
          ia::BatchClient::SubmitBlocking(ring, ia::kSysFstat, args);
          args = ia::SyscallArgs{};
          args.SetInt(0, lane.fd);
          args.SetInt(1, 0);
          args.SetInt(2, ia::kSeekSet);
          ia::BatchClient::SubmitBlocking(ring, ia::kSysLseek, args);
          args = ia::SyscallArgs{};
          args.SetInt(0, lane.fd);
          args.SetPtr(1, lane.buf);
          args.SetInt(2, static_cast<int64_t>(sizeof lane.buf));
          ia::BatchClient::SubmitBlocking(ring, ia::kSysRead, args);
        }
      });
    }
    const int64_t expected =
        static_cast<int64_t>(submitters) * static_cast<int64_t>(iterations) * 4;
    int64_t completed = 0;
    ia::SyscallCompletion comps[64];
    while (completed < expected) {
      ctx.DrainRing();
      const uint32_t reaped = ctx.ReapBatch(comps, 64);
      if (reaped == 0) {
        std::this_thread::yield();
        continue;
      }
      for (uint32_t i = 0; i < reaped; ++i) {
        if (comps[i].status < 0) {
          ++failures;
        }
      }
      completed += reaped;
    }
    for (std::thread& th : threads) {
      th.join();
    }
  }
  for (const auto& lane : lanes) {
    ctx.Close(lane->fd);
  }
  return failures == 0 ? 0 : 1;
}

struct MpscPoint {
  int submitters = 0;
  double percall_tp = 0;
  double mpsc_tp = 0;
  double speedup = 0;
};

MpscPoint MeasureMpscPoint(int submitters) {
  const int iterations = ItersFor(submitters, kIterations / 2);
  const auto factory = [submitters, iterations](bool via_ring) {
    return [submitters, via_ring, iterations](int, const std::atomic<bool>* go,
                                              std::atomic<int>* ready) {
      return [submitters, via_ring, go, ready, iterations](ia::ProcessContext& ctx) {
        return MpscOwnerBody(ctx, submitters, via_ring, go, ready, iterations);
      };
    };
  };
  MpscPoint point;
  point.submitters = submitters;
  point.percall_tp = MeasureWorld(1, 1, ia::KernelConfig{}, factory(false)).throughput;
  point.mpsc_tp = MeasureWorld(1, 1, ia::KernelConfig{}, factory(true)).throughput;
  point.speedup = point.percall_tp > 0 ? point.mpsc_tp / point.percall_tp : 0;
  return point;
}

// --- cross-stripe overlap: reorderable batches, overlap on vs off -------------
//
// Each client pre-opens four of its private files and per iteration submits
// ONE 16-entry batch of stat/fstat/lseek/read rows spanning them — exactly
// the reorder-eligible shape the stripe-grouped dispatcher regroups. The off
// kernel runs the identical batches through the strict in-order dispatcher.
int OverlapClientBody(ia::ProcessContext& ctx, int id, const std::atomic<bool>* go,
                      std::atomic<int>* ready, int iterations) {
  constexpr int kBatchFiles = 4;
  const std::string dir = "/data/c" + std::to_string(id);
  std::string files[kBatchFiles];
  int fds[kBatchFiles];
  for (int j = 0; j < kBatchFiles; ++j) {
    files[j] = dir + "/f" + std::to_string(j);
    fds[j] = ctx.Open(files[j], ia::kORdonly);
    if (fds[j] < 0) {
      return 1;
    }
  }
  ia::BatchClient batch(ctx, 64);
  ia::Stat st[kBatchFiles];
  ia::Stat fst[kBatchFiles];
  char bufs[kBatchFiles][256];
  ready->fetch_add(1, std::memory_order_acq_rel);
  while (!go->load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  for (int it = 0; it < iterations; ++it) {
    for (int j = 0; j < kBatchFiles; ++j) {
      batch.PushStat(files[j].c_str(), &st[j], 0);
      batch.PushFstat(fds[j], &fst[j], 1);
      batch.PushLseek(fds[j], static_cast<ia::Off>((it + j) % 256), ia::kSeekSet, 2);
      batch.PushRead(fds[j], bufs[j], static_cast<int64_t>(sizeof bufs[j]), 3);
    }
    if (batch.Flush() != 4 * kBatchFiles) {
      return 2;
    }
    for (const ia::SyscallCompletion& c : batch.completions()) {
      if (c.status < 0) {
        return 3;
      }
    }
  }
  for (int j = 0; j < kBatchFiles; ++j) {
    ctx.Close(fds[j]);
  }
  return 0;
}

double MeasureOverlapPoint(int n, bool overlap) {
  const int iterations = ItersFor(n, kIterations / 2);
  ia::KernelConfig config;
  config.batch_stripe_overlap = overlap;
  return MeasureWorld(n, n, config,
                      [iterations](int c, const std::atomic<bool>* go, std::atomic<int>* ready) {
                        return [c, go, ready, iterations](ia::ProcessContext& ctx) {
                          return OverlapClientBody(ctx, c, go, ready, iterations);
                        };
                      })
      .throughput;
}

// --- striped vs single tree lock: the directory-heavy mix ---------------------
//
// Pure shared-mode VFS reads (stat/access/open+close), the regime where every
// client previously bumped the reader count of ONE shared_mutex cacheline.
// The same kernel pinned to tree_lock_stripes=1 reproduces that world.
//
// Clients touch ONLY their own subtree. The earlier variant statted a shared
// /etc/motd every iteration, which hashed every client onto the same stripe's
// lock word — the striped kernel was paying single-stripe contention on a
// third of its path walks, and the measured striped-vs-single ratio flatlined
// near 1.0x. The gate measures stripe relief, so the workload has to actually
// spread across stripes the way per-client working sets do.
int DirHeavyBody(ia::ProcessContext& ctx, int id, const std::atomic<bool>* go,
                 std::atomic<int>* ready, int iterations) {
  ready->fetch_add(1, std::memory_order_acq_rel);
  while (!go->load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  ia::Stat st;
  const std::string dir = "/data/c" + std::to_string(id);
  for (int it = 0; it < iterations; ++it) {
    const std::string file = dir + "/f" + std::to_string(it % kFilesPerClient);
    const std::string file2 = dir + "/f" + std::to_string((it + 1) % kFilesPerClient);
    if (ctx.Stat(file, &st) != 0 || ctx.Stat(dir, &st) != 0 || ctx.Stat(file2, &st) != 0) {
      return 1;
    }
    if (ctx.Access(file, 0) != 0) {
      return 2;
    }
    const int fd = ctx.Open(file, ia::kORdonly);
    if (fd < 0) {
      return 3;
    }
    ctx.Close(fd);
  }
  return 0;
}

double MeasureTreePoint(int n, int stripes) {
  const int iterations = ItersFor(n, kIterations / 2);
  ia::KernelConfig config;
  config.tree_lock_stripes = stripes;
  return MeasureWorld(n, n, config,
                      [iterations](int c, const std::atomic<bool>* go, std::atomic<int>* ready) {
                        return [c, go, ready, iterations](ia::ProcessContext& ctx) {
                          return DirHeavyBody(ctx, c, go, ready, iterations);
                        };
                      })
      .throughput;
}

struct ParityOp {
  const char* name;
  std::function<void(ia::ProcessContext&)> op;
};

void BuildParityTree(ia::Kernel& kernel) {
  BuildTree(kernel, 1);
  kernel.fs().MkdirAll("/usr/local/lib/deep/nested");
  kernel.fs().InstallFile("/usr/local/lib/deep/nested/file", "x");
}

// Measures the Table 3-5-style single-client latencies on both kernels,
// INTERLEAVED (fast, big-lock, fast, ...) with min-of-attempts per cell, so
// host frequency/cache drift cannot skew one column against the other.
void MeasureParity(ia::Kernel& fast, ia::Kernel& biglock, const std::vector<ParityOp>& ops,
                   std::vector<double>* fast_us, std::vector<double>* biglock_us) {
  fast_us->assign(ops.size(), 1e18);
  biglock_us->assign(ops.size(), 1e18);
  const std::vector<ia::AgentRef> no_agents;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    for (size_t i = 0; i < ops.size(); ++i) {
      (*fast_us)[i] =
          std::min((*fast_us)[i], ia::bench::MeasurePerCallMicros(fast, no_agents, ops[i].op));
      (*biglock_us)[i] = std::min((*biglock_us)[i],
                                  ia::bench::MeasurePerCallMicros(biglock, no_agents, ops[i].op));
    }
  }
}

// --- pay-per-use: footprint-narrowed stack vs the same stack full-interface ---
//
// A stack of seven real agents whose declared footprints (derived from the
// syscall table's abstraction flags) exclude the per-process rows. Under the
// narrowed stack a getpid/gettimeofday mix must skip every frame and ride the
// lock-free kPerProcess lane; forcing the identical stack to whole-interface
// interest via use_footprint(Footprint::All()) restores the pre-change regime
// where every call climbs all seven frames. The gate: narrowed throughput on
// the non-path mix >= 5x the full-interface throughput.
void BuildPayPerUseTree(ia::Kernel& kernel) {
  kernel.fs().MkdirAll("/tmp");
  kernel.fs().MkdirAll("/w");
  kernel.fs().MkdirAll("/r");
  kernel.fs().MkdirAll("/t");
  kernel.fs().MkdirAll("/z");
}

std::vector<ia::AgentRef> MakePayPerUseStack(bool force_full_interface) {
  std::vector<std::shared_ptr<ia::SymbolicSyscall>> stack;
  stack.push_back(std::make_shared<ia::ChaosAgent>(ia::FaultPlan{}));
  stack.push_back(std::make_shared<ia::RetryAgent>());
  stack.push_back(std::make_shared<ia::UnionAgent>(
      std::vector<ia::UnionMount>{{"/u", {"/w", "/r"}}}));
  stack.push_back(std::make_shared<ia::SandboxAgent>(ia::SandboxPolicy{}));
  stack.push_back(std::make_shared<ia::TxnAgent>("/t", "/tmp/.txn"));
  stack.push_back(std::make_shared<ia::CompressAgent>("/z"));
  stack.push_back(std::make_shared<ia::DfsTraceAgent>("/tmp/dfs.log"));
  std::vector<ia::AgentRef> agents;
  agents.reserve(stack.size());
  for (auto& agent : stack) {
    if (force_full_interface) {
      agent->use_footprint(ia::Footprint::All());
    }
    agents.push_back(agent);
  }
  return agents;
}

// --- socketpair vs pipe: same-process 512-byte push/pull ------------------
//
// The polymorphic FileBacking refactor put pipes and AF_UNIX sockets behind
// the same descriptor plane; the socket transfer path (peer-directed ring,
// shutdown/peer-close accounting) must stay in the pipe path's cost class,
// since it generalizes it. One iteration = one 512-byte write into one end
// plus one read draining the other, so neither ring ever fills and the
// measurement stays free of blocking.
constexpr double kSocketpairVsPipeGate = 0.5;

double MeasureTransferPairMicros(bool use_socketpair) {
  ia::Kernel kernel;
  double per_iter = 1e18;
  ia::SpawnOptions options;
  options.body = [use_socketpair, &per_iter](ia::ProcessContext& ctx) {
    int fds[2];
    const int err = use_socketpair
                        ? ctx.Socketpair(ia::kAfUnix, ia::kSockStream, 0, fds)
                        : ctx.Pipe(fds);
    if (err != 0) {
      return 1;
    }
    const int wr = use_socketpair ? fds[0] : fds[1];
    const int rd = use_socketpair ? fds[1] : fds[0];
    char buf[512];
    for (char& b : buf) {
      b = 'p';
    }
    const int iterations = kUnderTsan ? 4000 : 20000;
    constexpr int64_t kLen = static_cast<int64_t>(sizeof buf);
    for (int i = 0; i < 200; ++i) {  // warm up
      if (ctx.Write(wr, buf, kLen) != kLen || ctx.Read(rd, buf, kLen) != kLen) {
        return 2;
      }
    }
    const int64_t start = ia::MonotonicMicros();
    for (int i = 0; i < iterations; ++i) {
      if (ctx.Write(wr, buf, kLen) != kLen || ctx.Read(rd, buf, kLen) != kLen) {
        return 2;
      }
    }
    per_iter = static_cast<double>(ia::MonotonicMicros() - start) / iterations;
    return 0;
  };
  const int status = kernel.HostWaitPid(kernel.Spawn(options));
  if (!ia::WifExited(status) || ia::WExitStatus(status) != 0) {
    std::fprintf(stderr, "transfer-pair measurement process failed\n");
  }
  return per_iter;
}

enum class PayPerUseConfig { kNoAgents, kNarrowedStack, kFullStack };

struct PayPerUseResult {
  double best_us = 1e18;  // µs per 4-call mix iteration
  // Compiled-route counters from the last attempt's kernel (exact once the
  // measurement process has exited).
  int64_t route_lookups = 0;
  int64_t route_builds = 0;
};

PayPerUseResult MeasurePayPerUseMixOnce(PayPerUseConfig config) {
  const auto mix = [](ia::ProcessContext& ctx) {
    ctx.Getpid();
    ctx.Getpid();
    ctx.Getpid();
    ia::TimeVal tv;
    ctx.Gettimeofday(&tv, nullptr);
  };
  ia::Kernel kernel;
  BuildPayPerUseTree(kernel);
  std::vector<ia::AgentRef> agents;
  if (config != PayPerUseConfig::kNoAgents) {
    agents = MakePayPerUseStack(config == PayPerUseConfig::kFullStack);
  }
  PayPerUseResult result;
  result.best_us = ia::bench::MeasurePerCallMicros(kernel, agents, mix, 50000);
  const ia::Kernel::RouteCacheStats routes = kernel.RouteStats();
  result.route_lookups = routes.lookups;
  result.route_builds = routes.builds;
  return result;
}

// Measures all three configurations with their attempts interleaved
// (bare/narrowed/full round-robin) so host-speed drift during the measurement
// window lands on every configuration equally — the gates compare ratios
// within a few percent, where a drift that hits only one block would dominate.
void MeasurePayPerUseMixes(PayPerUseResult* bare, PayPerUseResult* narrowed,
                           PayPerUseResult* full) {
  const auto fold = [](PayPerUseResult* into, const PayPerUseResult& attempt) {
    into->best_us = std::min(into->best_us, attempt.best_us);
    into->route_lookups = attempt.route_lookups;
    into->route_builds = attempt.route_builds;
  };
  for (int attempt = 0; attempt < kMixAttempts; ++attempt) {
    fold(bare, MeasurePayPerUseMixOnce(PayPerUseConfig::kNoAgents));
    fold(narrowed, MeasurePayPerUseMixOnce(PayPerUseConfig::kNarrowedStack));
    fold(full, MeasurePayPerUseMixOnce(PayPerUseConfig::kFullStack));
  }
}

}  // namespace

int main() {
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("Multi-client scalability: %d iterations x 9 syscalls per client\n", kIterations);
  std::printf("(host has %u hardware threads; best of %d attempts per point)\n\n", cores,
              kAttempts);

  bool ok = true;

  // --- throughput curve -----------------------------------------------------
  std::vector<Point> curve;
  for (const int n : kClientCounts) {
    curve.push_back(MeasureClients(n));
  }
  const double base = curve.front().throughput;

  std::printf("  clients    syscalls    seconds    calls/sec     speedup\n");
  for (const Point& p : curve) {
    std::printf("  %7d  %10lld  %9.4f  %11.0f  %9.2fx\n", p.clients,
                static_cast<long long>(p.syscalls), p.seconds, p.throughput,
                base > 0 ? p.throughput / base : 0);
  }

  const Point* at8 = nullptr;
  for (const Point& p : curve) {
    if (p.clients == 8) {
      at8 = &p;
    }
  }
  const double speedup8 = (at8 != nullptr && base > 0) ? at8->throughput / base : 0;
  if (kUnderTsan) {
    std::printf("\n  gate: skipped (%.2fx at 8 clients; running under ThreadSanitizer,\n"
                "        which is a race-coverage run, not a perf run)\n",
                speedup8);
  } else if (cores >= 8) {
    std::printf("\n  gate: %.2fx at 8 clients (self-check: >= %.1fx)\n", speedup8,
                kSpeedupGateAt8);
    if (speedup8 < kSpeedupGateAt8) {
      std::printf("  FAIL: 8-client aggregate throughput below %.1fx of 1 client\n",
                  kSpeedupGateAt8);
      ok = false;
    }
  } else {
    std::printf("\n  gate: skipped (%.2fx at 8 clients; host has %u < 8 hardware threads,\n"
                "        so the kernel cannot scale past the machine)\n",
                speedup8, cores);
  }

  // --- pooled curve to 256 clients ------------------------------------------
  std::vector<PooledPoint> pooled;
  for (const int n : kPooledClientCounts) {
    pooled.push_back(MeasurePooledClients(n));
  }
  const double pooled_base = pooled.front().throughput;
  std::printf("\n  pooled curve (client working sets over <= %d worker threads):\n",
              kPoolWorkerCap);
  std::printf("    clients  workers    calls/sec    vs 16\n");
  for (const PooledPoint& p : pooled) {
    std::printf("    %7d  %7d  %11.0f  %6.2fx\n", p.clients, p.workers, p.throughput,
                pooled_base > 0 ? p.throughput / pooled_base : 0);
  }
  double min_step_ratio = 1e18;
  for (size_t i = 1; i < pooled.size(); ++i) {
    if (pooled[i - 1].throughput > 0) {
      min_step_ratio = std::min(min_step_ratio,
                                pooled[i].throughput / pooled[i - 1].throughput);
    }
  }
  if (kUnderTsan) {
    std::printf("    gate: skipped (min step ratio %.2f; ThreadSanitizer run)\n",
                min_step_ratio);
  } else if (cores >= 16) {
    std::printf("    gate: min step ratio %.2f (self-check: >= %.2f — throughput must not\n"
                "          collapse as the client population grows under capped workers)\n",
                min_step_ratio, kMonotoneTolerance);
    if (min_step_ratio < kMonotoneTolerance) {
      std::printf("    FAIL: pooled throughput dropped more than %.0f%% on a curve step —\n"
                  "    per-client state is colliding on a shared serializer\n",
                  (1 - kMonotoneTolerance) * 100);
      ok = false;
    }
  } else {
    std::printf("    gate: skipped (min step ratio %.2f; host has %u < 16 hardware threads)\n",
                min_step_ratio, cores);
  }

  // --- ring: batched vs per-call issue --------------------------------------
  std::vector<RingPoint> ring_curve;
  for (const int n : {1, 4, 16, 64}) {
    ring_curve.push_back(MeasureRingPoint(n));
  }
  std::printf("\n  ring vs per-call (open + 6-op batch per iteration):\n");
  std::printf("    clients   per-call/sec       ring/sec    batched speedup\n");
  for (const RingPoint& p : ring_curve) {
    std::printf("    %7d  %13.0f  %13.0f  %15.2fx\n", p.clients, p.percall_tp, p.ring_tp,
                p.speedup);
  }
  const RingPoint* ring16 = nullptr;
  for (const RingPoint& p : ring_curve) {
    if (p.clients == 16) {
      ring16 = &p;
    }
  }
  const double ring_speedup16 = ring16 != nullptr ? ring16->speedup : 0;
  if (kUnderTsan) {
    std::printf("    gate: skipped (%.2fx batched at 16 clients; ThreadSanitizer run)\n",
                ring_speedup16);
  } else if (cores >= 16) {
    std::printf("    gate: %.2fx batched at 16 clients (self-check: >= %.1fx)\n",
                ring_speedup16, kRingGateAt16);
    if (ring_speedup16 < kRingGateAt16) {
      std::printf("    FAIL: batched submission below %.1fx of per-call throughput —\n"
                  "    the batch trap is not amortizing the dispatch prologue\n",
                  kRingGateAt16);
      ok = false;
    }
  } else {
    std::printf("    gate: skipped (%.2fx batched at 16 clients; host has %u < 16 hardware\n"
                "          threads, so contention never materializes)\n",
                ring_speedup16, cores);
  }

  // Single-client ring parity: batching must never lose to per-call issue.
  // Unlike the contention gates this needs no parallelism, so it is enforced
  // on every host (except under TSan). A single trial can swing several
  // percent from scheduler noise alone, so the gated number is the best of
  // three trials — a systematic regression depresses every trial, noise
  // does not.
  double ring_parity1 = 0;
  for (const RingPoint& p : ring_curve) {
    if (p.clients == 1) {
      ring_parity1 = p.speedup;
    }
  }
  for (int trial = 0; trial < 2 && ring_parity1 < kRingParityGateAt1; ++trial) {
    const double retry = MeasureRingPoint(1).speedup;
    if (retry > ring_parity1) {
      ring_parity1 = retry;
    }
  }
  if (kUnderTsan) {
    std::printf("    parity: skipped (%.2fx batched at 1 client; ThreadSanitizer run)\n",
                ring_parity1);
  } else {
    std::printf("    parity: %.2fx batched at 1 client (self-check: >= %.2fx)\n", ring_parity1,
                kRingParityGateAt1);
    if (ring_parity1 < kRingParityGateAt1) {
      std::printf("    FAIL: a single uncontended client loses by batching — the batch\n"
                  "    prologue costs more than the per-call dispatch it amortizes\n");
      ok = false;
    }
  }

  // --- MPSC: concurrent submitters vs owner per-call -------------------------
  std::vector<MpscPoint> mpsc_curve;
  for (const int s : kMpscSubmitterCounts) {
    mpsc_curve.push_back(MeasureMpscPoint(s));
  }
  std::printf("\n  MPSC ring (S submitter threads sharing one ring, owner drains):\n");
  std::printf("    submitters   per-call/sec      mpsc/sec    speedup\n");
  for (const MpscPoint& p : mpsc_curve) {
    std::printf("    %10d  %13.0f  %12.0f  %8.2fx\n", p.submitters, p.percall_tp, p.mpsc_tp,
                p.speedup);
  }
  const MpscPoint* mpsc16 = nullptr;
  for (const MpscPoint& p : mpsc_curve) {
    if (p.submitters == 16) {
      mpsc16 = &p;
    }
  }
  const double mpsc_speedup16 = mpsc16 != nullptr ? mpsc16->speedup : 0;
  if (kUnderTsan) {
    std::printf("    gate: skipped (%.2fx at 16 submitters; ThreadSanitizer run)\n",
                mpsc_speedup16);
  } else if (cores >= 16) {
    std::printf("    gate: %.2fx at 16 submitters (self-check: >= %.1fx)\n", mpsc_speedup16,
                kMpscGateAt16);
    if (mpsc_speedup16 < kMpscGateAt16) {
      std::printf("    FAIL: shared-ring submission below %.1fx of per-call issue —\n"
                  "    concurrent submitters are not buying batch amortization\n",
                  kMpscGateAt16);
      ok = false;
    }
  } else {
    std::printf("    gate: skipped (%.2fx at 16 submitters; host has %u < 16 hardware\n"
                "          threads)\n",
                mpsc_speedup16, cores);
  }

  // --- cross-stripe drain overlap: on vs off at 64 clients --------------------
  const double overlap_on_tp = MeasureOverlapPoint(64, true);
  const double overlap_off_tp = MeasureOverlapPoint(64, false);
  const double overlap_ratio = overlap_off_tp > 0 ? overlap_on_tp / overlap_off_tp : 0;
  std::printf("\n  cross-stripe drain overlap, 64-client reorderable batch mix:\n");
  std::printf("    overlap on: %.0f calls/sec; off: %.0f calls/sec (%.2fx)\n", overlap_on_tp,
              overlap_off_tp, overlap_ratio);
  if (kUnderTsan) {
    std::printf("    gate: skipped (ThreadSanitizer run)\n");
  } else if (cores >= 16) {
    std::printf("    gate: %.2fx overlap-vs-exact (self-check: >= %.1fx)\n", overlap_ratio,
                kOverlapGateAt64);
    if (overlap_ratio < kOverlapGateAt64) {
      std::printf("    FAIL: stripe-grouped batch execution is not beating strict in-order\n"
                  "    dispatch on a reorder-eligible read mix\n");
      ok = false;
    }
  } else {
    std::printf("    gate: skipped (host has %u < 16 hardware threads; per-entry stripe\n"
                "          acquires cannot contend without real parallelism)\n",
                cores);
  }

  // --- tree lock: striped vs single-stripe at 64 clients ---------------------
  const double striped_tp = MeasureTreePoint(64, ia::TreeLock::kDefaultStripes);
  const double single_tp = MeasureTreePoint(64, 1);
  const double stripe_ratio = single_tp > 0 ? striped_tp / single_tp : 0;
  std::printf("\n  tree lock, 64-client directory-heavy mix:\n");
  std::printf("    %d stripes: %.0f calls/sec; 1 stripe: %.0f calls/sec (%.2fx)\n",
              ia::TreeLock::kDefaultStripes, striped_tp, single_tp, stripe_ratio);
  if (kUnderTsan) {
    std::printf("    gate: skipped (ThreadSanitizer run)\n");
  } else if (cores >= 16) {
    std::printf("    gate: %.2fx striped-vs-single (self-check: >= %.1fx)\n", stripe_ratio,
                kStripeGateAt64);
    if (stripe_ratio < kStripeGateAt64) {
      std::printf("    FAIL: striping is not relieving the shared tree-lock cacheline\n");
      ok = false;
    }
  } else {
    std::printf("    gate: skipped (host has %u < 16 hardware threads; a single reader\n"
                "          cacheline cannot flatline without real parallelism)\n",
                cores);
  }

  // --- single-client parity: fast paths vs forced big-lock dispatch ---------
  std::vector<ParityOp> ops;
  ops.push_back({"getpid", [](ia::ProcessContext& ctx) { ctx.Getpid(); }});
  ops.push_back({"gettimeofday", [](ia::ProcessContext& ctx) {
                   ia::TimeVal tv;
                   ctx.Gettimeofday(&tv, nullptr);
                 }});
  ops.push_back({"stat [6 components]", [](ia::ProcessContext& ctx) {
                   ia::Stat st;
                   ctx.Stat("/usr/local/lib/deep/nested/file", &st);
                 }});
  ops.push_back({"open+read-1K+close", [](ia::ProcessContext& ctx) {
                   char buf[1024];
                   const int fd = ctx.Open("/data/c0/f0", ia::kORdonly);
                   ctx.Read(fd, buf, sizeof buf);
                   ctx.Close(fd);
                 }});

  ia::Kernel fast;
  BuildParityTree(fast);
  ia::Kernel biglock;
  BuildParityTree(biglock);
  biglock.SetFaultPlan(ia::FaultPlan{});  // inert plan: forces big-lock dispatch
  std::vector<double> fast_us;
  std::vector<double> biglock_us;
  MeasureParity(fast, biglock, ops, &fast_us, &biglock_us);

  std::printf("\n  single-client parity (fast paths vs big-lock-only dispatch):\n");
  std::printf("    %-22s %10s %12s %8s\n", "operation", "fast µs", "big-lock µs", "ratio");
  for (size_t i = 0; i < ops.size(); ++i) {
    const double ratio = biglock_us[i] > 0 ? fast_us[i] / biglock_us[i] : 0;
    std::printf("    %-22s %10.3f %12.3f %7.2fx\n", ops[i].name, fast_us[i], biglock_us[i],
                ratio);
    if (!kUnderTsan && fast_us[i] > biglock_us[i] * kParityMargin) {
      std::printf("    FAIL: %s fast path regressed more than %.0f%% over the big-lock path\n",
                  ops[i].name, (kParityMargin - 1) * 100);
      ok = false;
    }
  }
  if (kUnderTsan) {
    std::printf("    (self-check: skipped under ThreadSanitizer — ratios reported only)\n");
  } else {
    std::printf("    (self-check: each ratio <= %.2fx — the uncontended path must not pay\n"
                "     for the scalability it bought)\n",
                kParityMargin);
  }

  // --- pay-per-use: narrowed footprints vs whole-interface interest ---------
  PayPerUseResult bare_mix, narrowed_mix, full_mix;
  MeasurePayPerUseMixes(&bare_mix, &narrowed_mix, &full_mix);
  const double bare_mix_us = bare_mix.best_us;
  const double narrowed_mix_us = narrowed_mix.best_us;
  const double full_mix_us = full_mix.best_us;
  const double payperuse_speedup = narrowed_mix_us > 0 ? full_mix_us / narrowed_mix_us : 0;
  const double narrowed_vs_bare = bare_mix_us > 0 ? narrowed_mix_us / bare_mix_us : 0;
  const double route_hit_rate =
      narrowed_mix.route_lookups > 0
          ? 1.0 - static_cast<double>(narrowed_mix.route_builds) /
                      static_cast<double>(narrowed_mix.route_lookups)
          : 0;

  std::printf("\n  pay-per-use (getpid x3 + gettimeofday per iteration, 7-agent stack):\n");
  std::printf("    %-38s %10s %12s\n", "configuration", "µs/iter", "vs bare");
  std::printf("    %-38s %10.3f %11s\n", "no agents", bare_mix_us, "-");
  std::printf("    %-38s %10.3f %11.2fx\n", "stack, table-derived footprints",
              narrowed_mix_us, bare_mix_us > 0 ? narrowed_mix_us / bare_mix_us : 0);
  std::printf("    %-38s %10.3f %11.2fx\n", "same stack, forced whole-interface",
              full_mix_us, bare_mix_us > 0 ? full_mix_us / bare_mix_us : 0);
  if (kUnderTsan) {
    std::printf("    gate: skipped (%.2fx narrowed-vs-full; ThreadSanitizer run)\n",
                payperuse_speedup);
  } else {
    std::printf("    gate: %.2fx narrowed-vs-full throughput (self-check: >= %.1fx)\n",
                payperuse_speedup, kPayPerUseGate);
    if (payperuse_speedup < kPayPerUseGate) {
      std::printf("    FAIL: narrowed stack below %.1fx of the whole-interface stack —\n"
                  "    uninterested numbers are not skipping agent frames\n",
                  kPayPerUseGate);
      ok = false;
    }
  }

  // --- compiled routes: narrowed stack vs bare kernel -----------------------
  std::printf("\n  compiled routes (same mix, narrowed 7-agent stack vs no agents):\n");
  std::printf("    narrowed-vs-bare %.2fx; route cache: %lld lookups, %lld builds "
              "(%.4f%% hit rate)\n",
              narrowed_vs_bare, static_cast<long long>(narrowed_mix.route_lookups),
              static_cast<long long>(narrowed_mix.route_builds), route_hit_rate * 100);
  if (kUnderTsan) {
    std::printf("    gate: skipped (ThreadSanitizer run)\n");
  } else {
    std::printf("    gate: narrowed-vs-bare <= %.2fx (self-check: the route table must\n"
                "     make an all-uninterested dispatch indistinguishable from bare)\n",
                kCompiledRouteGate);
    if (narrowed_vs_bare > kCompiledRouteGate) {
      std::printf("    FAIL: narrowed stack more than %.0f%% over the agentless kernel —\n"
                  "    dispatch is scanning frames instead of following compiled routes\n",
                  (kCompiledRouteGate - 1) * 100);
      ok = false;
    }
  }

  // --- socketpair vs pipe: descriptor-plane transfer parity -----------------
  double pipe_us = 1e18;
  double sock_us = 1e18;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    pipe_us = std::min(pipe_us, MeasureTransferPairMicros(false));
    sock_us = std::min(sock_us, MeasureTransferPairMicros(true));
  }
  const double socketpair_vs_pipe = sock_us > 0 ? pipe_us / sock_us : 0;
  std::printf("\n  socketpair vs pipe (512-byte write+read per iteration):\n");
  std::printf("    pipe %.3f µs/iter; socketpair %.3f µs/iter (%.2fx throughput)\n", pipe_us,
              sock_us, socketpair_vs_pipe);
  if (kUnderTsan) {
    std::printf("    gate: skipped (ThreadSanitizer run)\n");
  } else {
    std::printf("    gate: socketpair-vs-pipe >= %.2fx (self-check: the socket transfer\n"
                "     path must stay in the cost class of the pipe path it generalizes)\n",
                kSocketpairVsPipeGate);
    if (socketpair_vs_pipe < kSocketpairVsPipeGate) {
      std::printf("    FAIL: socket transfers below %.1fx of pipe throughput — the peer\n"
                  "    bookkeeping is dominating the ring copy\n",
                  kSocketpairVsPipeGate);
      ok = false;
    }
  }

  // --- machine-readable emission --------------------------------------------
  std::printf("\n");
  for (const Point& p : curve) {
    std::printf("{\"bench\":\"bench_scalability\",\"clients\":%d,\"syscalls\":%lld,"
                "\"seconds\":%.6f,\"throughput_calls_per_sec\":%.0f,\"speedup\":%.3f}\n",
                p.clients, static_cast<long long>(p.syscalls), p.seconds, p.throughput,
                base > 0 ? p.throughput / base : 0);
  }
  for (const PooledPoint& p : pooled) {
    std::printf("{\"bench\":\"bench_scalability\",\"mode\":\"pooled\",\"clients\":%d,"
                "\"workers\":%d,\"throughput_calls_per_sec\":%.0f,\"vs_first\":%.3f}\n",
                p.clients, p.workers, p.throughput,
                pooled_base > 0 ? p.throughput / pooled_base : 0);
  }
  std::printf("{\"bench\":\"bench_scalability\",\"check\":\"pooled_monotone\","
              "\"min_step_ratio\":%.3f,\"gate\":%.2f,\"enforced\":%s}\n",
              min_step_ratio, kMonotoneTolerance,
              (!kUnderTsan && cores >= 16) ? "true" : "false");
  std::printf("{\"bench\":\"bench_scalability\",\"check\":\"tree_stripes\",\"clients\":64,"
              "\"stripes\":%d,\"striped_calls_per_sec\":%.0f,\"single_calls_per_sec\":%.0f,"
              "\"striped_vs_single\":%.3f}\n",
              ia::TreeLock::kDefaultStripes, striped_tp, single_tp, stripe_ratio);
  std::printf("{\"bench\":\"bench_scalability\",\"check\":\"stripe_overlap\",\"clients\":64,"
              "\"overlap_on_calls_per_sec\":%.0f,\"overlap_off_calls_per_sec\":%.0f,"
              "\"overlap_vs_exact\":%.3f,\"gate\":%.1f,\"enforced\":%s}\n",
              overlap_on_tp, overlap_off_tp, overlap_ratio, kOverlapGateAt64,
              (!kUnderTsan && cores >= 16) ? "true" : "false");
  for (const RingPoint& p : ring_curve) {
    std::printf("{\"bench\":\"bench_ring\",\"clients\":%d,"
                "\"percall_calls_per_sec\":%.0f,\"ring_calls_per_sec\":%.0f,"
                "\"batched_speedup\":%.3f}\n",
                p.clients, p.percall_tp, p.ring_tp, p.speedup);
  }
  std::printf("{\"bench\":\"bench_ring\",\"check\":\"batch_speedup_at_16\","
              "\"speedup\":%.3f,\"gate\":%.1f,\"enforced\":%s}\n",
              ring_speedup16, kRingGateAt16,
              (!kUnderTsan && cores >= 16) ? "true" : "false");
  std::printf("{\"bench\":\"bench_ring\",\"check\":\"single_client_parity\","
              "\"speedup\":%.3f,\"gate\":%.2f,\"enforced\":%s}\n",
              ring_parity1, kRingParityGateAt1, !kUnderTsan ? "true" : "false");
  for (const MpscPoint& p : mpsc_curve) {
    std::printf("{\"bench\":\"bench_ring\",\"check\":\"mpsc_ring\",\"mpsc_submitters\":%d,"
                "\"percall_calls_per_sec\":%.0f,\"mpsc_calls_per_sec\":%.0f,"
                "\"mpsc_speedup\":%.3f}\n",
                p.submitters, p.percall_tp, p.mpsc_tp, p.speedup);
  }
  std::printf("{\"bench\":\"bench_ring\",\"check\":\"mpsc_speedup_at_16\","
              "\"speedup\":%.3f,\"gate\":%.1f,\"enforced\":%s}\n",
              mpsc_speedup16, kMpscGateAt16,
              (!kUnderTsan && cores >= 16) ? "true" : "false");
  for (size_t i = 0; i < ops.size(); ++i) {
    std::printf("{\"bench\":\"bench_scalability\",\"check\":\"single_client_parity\","
                "\"op\":\"%s\",\"fast_us\":%.3f,\"biglock_us\":%.3f,\"ratio\":%.3f}\n",
                ops[i].name, fast_us[i], biglock_us[i],
                biglock_us[i] > 0 ? fast_us[i] / biglock_us[i] : 0);
  }

  std::printf("{\"bench\":\"bench_scalability\",\"check\":\"pay_per_use\","
              "\"bare_us\":%.3f,\"narrowed_us\":%.3f,\"full_us\":%.3f,"
              "\"narrowed_vs_full\":%.3f}\n",
              bare_mix_us, narrowed_mix_us, full_mix_us, payperuse_speedup);
  std::printf("{\"bench\":\"bench_scalability\",\"check\":\"compiled_routes\","
              "\"bare_us\":%.3f,\"narrowed_us\":%.3f,\"narrowed_vs_bare\":%.3f,"
              "\"route_lookups\":%lld,\"route_builds\":%lld,\"route_hit_rate\":%.6f}\n",
              bare_mix_us, narrowed_mix_us, narrowed_vs_bare,
              static_cast<long long>(narrowed_mix.route_lookups),
              static_cast<long long>(narrowed_mix.route_builds), route_hit_rate);

  std::printf("{\"bench\":\"bench_scalability\",\"check\":\"socketpair_ping_pong\","
              "\"pipe_us\":%.3f,\"socketpair_us\":%.3f,\"socketpair_vs_pipe\":%.3f,"
              "\"gate\":%.2f,\"enforced\":%s}\n",
              pipe_us, sock_us, socketpair_vs_pipe, kSocketpairVsPipeGate,
              !kUnderTsan ? "true" : "false");

  std::printf("\n%s\n", ok ? "ALL SELF-CHECKS PASSED" : "SELF-CHECK FAILURES (see above)");
  return ok ? 0 : 1;
}
