// Multi-client scalability benchmark — the gate for the big-lock breakup.
//
// N simulated client processes (1, 2, 4, 8, 16), each on its own host thread,
// run an identical stat/open/read/getpid mix against a shared kernel. Before
// the lock split every call serialized on the big kernel lock, so aggregate
// throughput was flat in N; with kPerProcess rows dispatching lock-free and
// kVfsRead rows walking under the shared-mode tree lock, throughput should
// scale with host cores.
//
// Two self-checks (exit status is nonzero if either fails):
//
//   1. Scalability: aggregate syscall throughput at 8 clients >= 2.5x the
//      1-client throughput. Only enforced when the host has >= 8 hardware
//      threads — on smaller hosts the kernel cannot scale past the machine,
//      so the gate reports "skipped" (the curve is still printed/emitted).
//   2. Single-client parity: the uncontended fast paths must not cost more
//      than the big-lock-only dispatch they replaced. Installing an EMPTY
//      fault plan forces every dispatch through the pre-change big-lock
//      regime (see kernel.h), so the same binary measures both worlds on the
//      same host: fast-path latency must be <= 1.10x the big-lock latency
//      for each Table 3-5-style operation. This is the host-independent form
//      of "within 10% of the pre-change baseline".
//
// Alongside the human table the bench emits one JSON object per line
// (clients/throughput/speedup and one per parity row) so future changes can
// track the scaling curve the way the Table 3-5 rows are tracked.
#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/agents/chaos.h"
#include "src/agents/dfs_trace.h"
#include "src/agents/filter_fs.h"
#include "src/agents/retry.h"
#include "src/agents/sandbox.h"
#include "src/agents/txn.h"
#include "src/agents/union_fs.h"
#include "src/base/clock.h"
#include "src/kernel/context.h"
#include "src/kernel/kernel.h"
#include "src/toolkit/footprint.h"

// Under ThreadSanitizer the bench still runs in full (its job there is race
// coverage: N clients hammering every fast path), but the perf gates are not
// enforced — TSan's instrumentation taxes atomic-dense code hardest, which
// skews exactly the ratios the gates measure.
#if defined(__SANITIZE_THREAD__)
#define IA_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define IA_UNDER_TSAN 1
#endif
#endif
#ifndef IA_UNDER_TSAN
#define IA_UNDER_TSAN 0
#endif

namespace {

constexpr bool kUnderTsan = IA_UNDER_TSAN != 0;
constexpr int kClientCounts[] = {1, 2, 4, 8, 16};
constexpr int kFilesPerClient = 8;
constexpr int kIterations = 4000;  // mix iterations per client (9 syscalls each)
constexpr int kAttempts = 3;       // best-of-N against host scheduling noise
// The pay-per-use/compiled-route gates compare two sub-µs measurements whose
// ratio sits within a 3% margin, so the mix takes more attempts to converge on
// the true minimum than the coarser curve/parity measurements need.
constexpr int kMixAttempts = 6;
constexpr double kSpeedupGateAt8 = 2.5;
constexpr double kParityMargin = 1.10;
// Tightened from 5.0 when dispatch moved to compiled routes: the narrowed
// stack no longer pays the per-frame interest scan, so the measured margin
// rose from ~5.9x to ~7.7x. 6.5 keeps headroom for host noise.
constexpr double kPayPerUseGate = 6.5;
// Compiled-route gate: with flattened routes, a footprint-narrowed 7-agent
// stack must dispatch a non-path per-process mix at bare-kernel speed — at
// most 3% over the agentless kernel (it was 1.06x under the per-frame scan).
constexpr double kCompiledRouteGate = 1.03;

// Installs each client's private file set plus one shared read target.
void BuildTree(ia::Kernel& kernel, int max_clients) {
  kernel.fs().InstallFile("/etc/motd", std::string(512, 'm'));
  for (int c = 0; c < max_clients; ++c) {
    const std::string dir = "/data/c" + std::to_string(c);
    kernel.fs().MkdirAll(dir);
    for (int f = 0; f < kFilesPerClient; ++f) {
      kernel.fs().InstallFile(dir + "/f" + std::to_string(f), std::string(1024, 'x'));
    }
  }
}

// The per-client mix: 9 syscalls per iteration, all on the lock-free or
// shared-tree fast paths (getpid/gettimeofday per-process; stat/open/read/
// fstat/close read-only VFS). Clients mostly touch their own directory — the
// many-client regime the ROADMAP's "millions of users" north star implies —
// plus one shared hot file everyone stats.
int ClientBody(ia::ProcessContext& ctx, int id, const std::atomic<bool>* go,
               std::atomic<int>* ready) {
  ready->fetch_add(1, std::memory_order_acq_rel);
  while (!go->load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  char buf[1024];
  ia::Stat st;
  ia::TimeVal tv;
  const std::string dir = "/data/c" + std::to_string(id);
  for (int it = 0; it < kIterations; ++it) {
    const std::string file = dir + "/f" + std::to_string(it % kFilesPerClient);
    ctx.Getpid();
    ctx.Getpid();
    ctx.Gettimeofday(&tv, nullptr);
    if (ctx.Stat(file, &st) != 0 || ctx.Stat("/etc/motd", &st) != 0) {
      return 1;
    }
    const int fd = ctx.Open(file, ia::kORdonly);
    if (fd < 0 || ctx.Read(fd, buf, sizeof buf) != static_cast<int64_t>(sizeof buf)) {
      return 2;
    }
    if (ctx.Fstat(fd, &st) != 0 || ctx.Close(fd) != 0) {
      return 3;
    }
  }
  return 0;
}

struct Point {
  int clients = 0;
  int64_t syscalls = 0;
  double seconds = 0;
  double throughput = 0;  // syscalls per host-second, best attempt
};

Point MeasureClients(int n) {
  Point best;
  best.clients = n;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    ia::Kernel kernel;
    BuildTree(kernel, n);
    std::atomic<bool> go{false};
    std::atomic<int> ready{0};
    std::vector<ia::Pid> pids;
    pids.reserve(n);
    for (int c = 0; c < n; ++c) {
      ia::SpawnOptions options;
      options.body = [c, &go, &ready](ia::ProcessContext& ctx) {
        return ClientBody(ctx, c, &go, &ready);
      };
      pids.push_back(kernel.Spawn(options));
    }
    while (ready.load(std::memory_order_acquire) < n) {
      std::this_thread::yield();
    }
    const int64_t calls_before = kernel.TotalSyscallCount();
    const int64_t start = ia::MonotonicMicros();
    go.store(true, std::memory_order_release);
    for (const ia::Pid pid : pids) {
      const int status = kernel.HostWaitPid(pid);
      if (!ia::WifExited(status) || ia::WExitStatus(status) != 0) {
        std::fprintf(stderr, "client %d failed (status %#x)\n", pid, status);
      }
    }
    const double seconds = static_cast<double>(ia::MonotonicMicros() - start) / 1e6;
    const int64_t syscalls = kernel.TotalSyscallCount() - calls_before;
    const double throughput = seconds > 0 ? static_cast<double>(syscalls) / seconds : 0;
    if (throughput > best.throughput) {
      best.syscalls = syscalls;
      best.seconds = seconds;
      best.throughput = throughput;
    }
  }
  return best;
}

struct ParityOp {
  const char* name;
  std::function<void(ia::ProcessContext&)> op;
};

void BuildParityTree(ia::Kernel& kernel) {
  BuildTree(kernel, 1);
  kernel.fs().MkdirAll("/usr/local/lib/deep/nested");
  kernel.fs().InstallFile("/usr/local/lib/deep/nested/file", "x");
}

// Measures the Table 3-5-style single-client latencies on both kernels,
// INTERLEAVED (fast, big-lock, fast, ...) with min-of-attempts per cell, so
// host frequency/cache drift cannot skew one column against the other.
void MeasureParity(ia::Kernel& fast, ia::Kernel& biglock, const std::vector<ParityOp>& ops,
                   std::vector<double>* fast_us, std::vector<double>* biglock_us) {
  fast_us->assign(ops.size(), 1e18);
  biglock_us->assign(ops.size(), 1e18);
  const std::vector<ia::AgentRef> no_agents;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    for (size_t i = 0; i < ops.size(); ++i) {
      (*fast_us)[i] =
          std::min((*fast_us)[i], ia::bench::MeasurePerCallMicros(fast, no_agents, ops[i].op));
      (*biglock_us)[i] = std::min((*biglock_us)[i],
                                  ia::bench::MeasurePerCallMicros(biglock, no_agents, ops[i].op));
    }
  }
}

// --- pay-per-use: footprint-narrowed stack vs the same stack full-interface ---
//
// A stack of seven real agents whose declared footprints (derived from the
// syscall table's abstraction flags) exclude the per-process rows. Under the
// narrowed stack a getpid/gettimeofday mix must skip every frame and ride the
// lock-free kPerProcess lane; forcing the identical stack to whole-interface
// interest via use_footprint(Footprint::All()) restores the pre-change regime
// where every call climbs all seven frames. The gate: narrowed throughput on
// the non-path mix >= 5x the full-interface throughput.
void BuildPayPerUseTree(ia::Kernel& kernel) {
  kernel.fs().MkdirAll("/tmp");
  kernel.fs().MkdirAll("/w");
  kernel.fs().MkdirAll("/r");
  kernel.fs().MkdirAll("/t");
  kernel.fs().MkdirAll("/z");
}

std::vector<ia::AgentRef> MakePayPerUseStack(bool force_full_interface) {
  std::vector<std::shared_ptr<ia::SymbolicSyscall>> stack;
  stack.push_back(std::make_shared<ia::ChaosAgent>(ia::FaultPlan{}));
  stack.push_back(std::make_shared<ia::RetryAgent>());
  stack.push_back(std::make_shared<ia::UnionAgent>(
      std::vector<ia::UnionMount>{{"/u", {"/w", "/r"}}}));
  stack.push_back(std::make_shared<ia::SandboxAgent>(ia::SandboxPolicy{}));
  stack.push_back(std::make_shared<ia::TxnAgent>("/t", "/tmp/.txn"));
  stack.push_back(std::make_shared<ia::CompressAgent>("/z"));
  stack.push_back(std::make_shared<ia::DfsTraceAgent>("/tmp/dfs.log"));
  std::vector<ia::AgentRef> agents;
  agents.reserve(stack.size());
  for (auto& agent : stack) {
    if (force_full_interface) {
      agent->use_footprint(ia::Footprint::All());
    }
    agents.push_back(agent);
  }
  return agents;
}

enum class PayPerUseConfig { kNoAgents, kNarrowedStack, kFullStack };

struct PayPerUseResult {
  double best_us = 1e18;  // µs per 4-call mix iteration
  // Compiled-route counters from the last attempt's kernel (exact once the
  // measurement process has exited).
  int64_t route_lookups = 0;
  int64_t route_builds = 0;
};

PayPerUseResult MeasurePayPerUseMixOnce(PayPerUseConfig config) {
  const auto mix = [](ia::ProcessContext& ctx) {
    ctx.Getpid();
    ctx.Getpid();
    ctx.Getpid();
    ia::TimeVal tv;
    ctx.Gettimeofday(&tv, nullptr);
  };
  ia::Kernel kernel;
  BuildPayPerUseTree(kernel);
  std::vector<ia::AgentRef> agents;
  if (config != PayPerUseConfig::kNoAgents) {
    agents = MakePayPerUseStack(config == PayPerUseConfig::kFullStack);
  }
  PayPerUseResult result;
  result.best_us = ia::bench::MeasurePerCallMicros(kernel, agents, mix, 50000);
  const ia::Kernel::RouteCacheStats routes = kernel.RouteStats();
  result.route_lookups = routes.lookups;
  result.route_builds = routes.builds;
  return result;
}

// Measures all three configurations with their attempts interleaved
// (bare/narrowed/full round-robin) so host-speed drift during the measurement
// window lands on every configuration equally — the gates compare ratios
// within a few percent, where a drift that hits only one block would dominate.
void MeasurePayPerUseMixes(PayPerUseResult* bare, PayPerUseResult* narrowed,
                           PayPerUseResult* full) {
  const auto fold = [](PayPerUseResult* into, const PayPerUseResult& attempt) {
    into->best_us = std::min(into->best_us, attempt.best_us);
    into->route_lookups = attempt.route_lookups;
    into->route_builds = attempt.route_builds;
  };
  for (int attempt = 0; attempt < kMixAttempts; ++attempt) {
    fold(bare, MeasurePayPerUseMixOnce(PayPerUseConfig::kNoAgents));
    fold(narrowed, MeasurePayPerUseMixOnce(PayPerUseConfig::kNarrowedStack));
    fold(full, MeasurePayPerUseMixOnce(PayPerUseConfig::kFullStack));
  }
}

}  // namespace

int main() {
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("Multi-client scalability: %d iterations x 9 syscalls per client\n", kIterations);
  std::printf("(host has %u hardware threads; best of %d attempts per point)\n\n", cores,
              kAttempts);

  bool ok = true;

  // --- throughput curve -----------------------------------------------------
  std::vector<Point> curve;
  for (const int n : kClientCounts) {
    curve.push_back(MeasureClients(n));
  }
  const double base = curve.front().throughput;

  std::printf("  clients    syscalls    seconds    calls/sec     speedup\n");
  for (const Point& p : curve) {
    std::printf("  %7d  %10lld  %9.4f  %11.0f  %9.2fx\n", p.clients,
                static_cast<long long>(p.syscalls), p.seconds, p.throughput,
                base > 0 ? p.throughput / base : 0);
  }

  const Point* at8 = nullptr;
  for (const Point& p : curve) {
    if (p.clients == 8) {
      at8 = &p;
    }
  }
  const double speedup8 = (at8 != nullptr && base > 0) ? at8->throughput / base : 0;
  if (kUnderTsan) {
    std::printf("\n  gate: skipped (%.2fx at 8 clients; running under ThreadSanitizer,\n"
                "        which is a race-coverage run, not a perf run)\n",
                speedup8);
  } else if (cores >= 8) {
    std::printf("\n  gate: %.2fx at 8 clients (self-check: >= %.1fx)\n", speedup8,
                kSpeedupGateAt8);
    if (speedup8 < kSpeedupGateAt8) {
      std::printf("  FAIL: 8-client aggregate throughput below %.1fx of 1 client\n",
                  kSpeedupGateAt8);
      ok = false;
    }
  } else {
    std::printf("\n  gate: skipped (%.2fx at 8 clients; host has %u < 8 hardware threads,\n"
                "        so the kernel cannot scale past the machine)\n",
                speedup8, cores);
  }

  // --- single-client parity: fast paths vs forced big-lock dispatch ---------
  std::vector<ParityOp> ops;
  ops.push_back({"getpid", [](ia::ProcessContext& ctx) { ctx.Getpid(); }});
  ops.push_back({"gettimeofday", [](ia::ProcessContext& ctx) {
                   ia::TimeVal tv;
                   ctx.Gettimeofday(&tv, nullptr);
                 }});
  ops.push_back({"stat [6 components]", [](ia::ProcessContext& ctx) {
                   ia::Stat st;
                   ctx.Stat("/usr/local/lib/deep/nested/file", &st);
                 }});
  ops.push_back({"open+read-1K+close", [](ia::ProcessContext& ctx) {
                   char buf[1024];
                   const int fd = ctx.Open("/data/c0/f0", ia::kORdonly);
                   ctx.Read(fd, buf, sizeof buf);
                   ctx.Close(fd);
                 }});

  ia::Kernel fast;
  BuildParityTree(fast);
  ia::Kernel biglock;
  BuildParityTree(biglock);
  biglock.SetFaultPlan(ia::FaultPlan{});  // inert plan: forces big-lock dispatch
  std::vector<double> fast_us;
  std::vector<double> biglock_us;
  MeasureParity(fast, biglock, ops, &fast_us, &biglock_us);

  std::printf("\n  single-client parity (fast paths vs big-lock-only dispatch):\n");
  std::printf("    %-22s %10s %12s %8s\n", "operation", "fast µs", "big-lock µs", "ratio");
  for (size_t i = 0; i < ops.size(); ++i) {
    const double ratio = biglock_us[i] > 0 ? fast_us[i] / biglock_us[i] : 0;
    std::printf("    %-22s %10.3f %12.3f %7.2fx\n", ops[i].name, fast_us[i], biglock_us[i],
                ratio);
    if (!kUnderTsan && fast_us[i] > biglock_us[i] * kParityMargin) {
      std::printf("    FAIL: %s fast path regressed more than %.0f%% over the big-lock path\n",
                  ops[i].name, (kParityMargin - 1) * 100);
      ok = false;
    }
  }
  if (kUnderTsan) {
    std::printf("    (self-check: skipped under ThreadSanitizer — ratios reported only)\n");
  } else {
    std::printf("    (self-check: each ratio <= %.2fx — the uncontended path must not pay\n"
                "     for the scalability it bought)\n",
                kParityMargin);
  }

  // --- pay-per-use: narrowed footprints vs whole-interface interest ---------
  PayPerUseResult bare_mix, narrowed_mix, full_mix;
  MeasurePayPerUseMixes(&bare_mix, &narrowed_mix, &full_mix);
  const double bare_mix_us = bare_mix.best_us;
  const double narrowed_mix_us = narrowed_mix.best_us;
  const double full_mix_us = full_mix.best_us;
  const double payperuse_speedup = narrowed_mix_us > 0 ? full_mix_us / narrowed_mix_us : 0;
  const double narrowed_vs_bare = bare_mix_us > 0 ? narrowed_mix_us / bare_mix_us : 0;
  const double route_hit_rate =
      narrowed_mix.route_lookups > 0
          ? 1.0 - static_cast<double>(narrowed_mix.route_builds) /
                      static_cast<double>(narrowed_mix.route_lookups)
          : 0;

  std::printf("\n  pay-per-use (getpid x3 + gettimeofday per iteration, 7-agent stack):\n");
  std::printf("    %-38s %10s %12s\n", "configuration", "µs/iter", "vs bare");
  std::printf("    %-38s %10.3f %11s\n", "no agents", bare_mix_us, "-");
  std::printf("    %-38s %10.3f %11.2fx\n", "stack, table-derived footprints",
              narrowed_mix_us, bare_mix_us > 0 ? narrowed_mix_us / bare_mix_us : 0);
  std::printf("    %-38s %10.3f %11.2fx\n", "same stack, forced whole-interface",
              full_mix_us, bare_mix_us > 0 ? full_mix_us / bare_mix_us : 0);
  if (kUnderTsan) {
    std::printf("    gate: skipped (%.2fx narrowed-vs-full; ThreadSanitizer run)\n",
                payperuse_speedup);
  } else {
    std::printf("    gate: %.2fx narrowed-vs-full throughput (self-check: >= %.1fx)\n",
                payperuse_speedup, kPayPerUseGate);
    if (payperuse_speedup < kPayPerUseGate) {
      std::printf("    FAIL: narrowed stack below %.1fx of the whole-interface stack —\n"
                  "    uninterested numbers are not skipping agent frames\n",
                  kPayPerUseGate);
      ok = false;
    }
  }

  // --- compiled routes: narrowed stack vs bare kernel -----------------------
  std::printf("\n  compiled routes (same mix, narrowed 7-agent stack vs no agents):\n");
  std::printf("    narrowed-vs-bare %.2fx; route cache: %lld lookups, %lld builds "
              "(%.4f%% hit rate)\n",
              narrowed_vs_bare, static_cast<long long>(narrowed_mix.route_lookups),
              static_cast<long long>(narrowed_mix.route_builds), route_hit_rate * 100);
  if (kUnderTsan) {
    std::printf("    gate: skipped (ThreadSanitizer run)\n");
  } else {
    std::printf("    gate: narrowed-vs-bare <= %.2fx (self-check: the route table must\n"
                "     make an all-uninterested dispatch indistinguishable from bare)\n",
                kCompiledRouteGate);
    if (narrowed_vs_bare > kCompiledRouteGate) {
      std::printf("    FAIL: narrowed stack more than %.0f%% over the agentless kernel —\n"
                  "    dispatch is scanning frames instead of following compiled routes\n",
                  (kCompiledRouteGate - 1) * 100);
      ok = false;
    }
  }

  // --- machine-readable emission --------------------------------------------
  std::printf("\n");
  for (const Point& p : curve) {
    std::printf("{\"bench\":\"bench_scalability\",\"clients\":%d,\"syscalls\":%lld,"
                "\"seconds\":%.6f,\"throughput_calls_per_sec\":%.0f,\"speedup\":%.3f}\n",
                p.clients, static_cast<long long>(p.syscalls), p.seconds, p.throughput,
                base > 0 ? p.throughput / base : 0);
  }
  for (size_t i = 0; i < ops.size(); ++i) {
    std::printf("{\"bench\":\"bench_scalability\",\"check\":\"single_client_parity\","
                "\"op\":\"%s\",\"fast_us\":%.3f,\"biglock_us\":%.3f,\"ratio\":%.3f}\n",
                ops[i].name, fast_us[i], biglock_us[i],
                biglock_us[i] > 0 ? fast_us[i] / biglock_us[i] : 0);
  }

  std::printf("{\"bench\":\"bench_scalability\",\"check\":\"pay_per_use\","
              "\"bare_us\":%.3f,\"narrowed_us\":%.3f,\"full_us\":%.3f,"
              "\"narrowed_vs_full\":%.3f}\n",
              bare_mix_us, narrowed_mix_us, full_mix_us, payperuse_speedup);
  std::printf("{\"bench\":\"bench_scalability\",\"check\":\"compiled_routes\","
              "\"bare_us\":%.3f,\"narrowed_us\":%.3f,\"narrowed_vs_bare\":%.3f,"
              "\"route_lookups\":%lld,\"route_builds\":%lld,\"route_hit_rate\":%.6f}\n",
              bare_mix_us, narrowed_mix_us, narrowed_vs_bare,
              static_cast<long long>(narrowed_mix.route_lookups),
              static_cast<long long>(narrowed_mix.route_builds), route_hit_rate);

  std::printf("\n%s\n", ok ? "ALL SELF-CHECKS PASSED" : "SELF-CHECK FAILURES (see above)");
  return ok ? 0 : 1;
}
