// Table 3-2: "Time to format my dissertation" — a compute-dominated,
// single-process, moderate-syscall workload run bare and under three agents.
//
//   Paper (VAX 6250, 716 syscalls, base 141.5 s):
//     none   141.5 s        -
//     timex  142.0 s     +0.5%
//     trace  145.0 s     +2.5%
//     union  146.5 s     +3.5%
//
// Shape claims: agent overhead is nearly negligible for syscall-light
// compute-heavy work, ordered none < timex < trace ~ union, all within a few
// percent.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/agents/timex.h"
#include "src/agents/trace.h"
#include "src/agents/union_fs.h"
#include "src/apps/apps.h"

namespace {

void Setup(ia::Kernel& kernel) {
  ia::InstallStandardPrograms(kernel);
  ia::SetupScribeWorkload(kernel);
}

}  // namespace

int main() {
  ia::KernelConfig config;
  // Give Compute() real weight so the run is compute-dominated like Scribe was.
  config.compute_spin_scale = 0.4;

  ia::SpawnOptions spawn;
  spawn.path = "/usr/bin/scribe";
  spawn.argv = {"scribe", "dissertation.mss"};
  spawn.cwd = "/home/mbj";

  const std::vector<ia::UnionMount> mounts = {{"/union", {"/usr/lib", "/usr/bin"}}};
  const std::vector<ia::bench::NamedConfig> configs = {
      {"none", nullptr},
      {"timex",
       [] { return std::vector<ia::AgentRef>{std::make_shared<ia::TimexAgent>(3600)}; }},
      {"trace",
       [] {
         return std::vector<ia::AgentRef>{std::make_shared<ia::TraceAgent>(
             ia::TraceOptions{.log_path = "/tmp/t.log"})};
       }},
      {"union",
       [&mounts] {
         return std::vector<ia::AgentRef>{std::make_shared<ia::UnionAgent>(mounts)};
       }},
  };

  std::printf("Table 3-2: Time to format my dissertation\n");
  std::printf("(average of 9 interleaved runs after 1 discarded; paper: +0.5%% / +2.5%% / +3.5%%)\n\n");
  std::printf("  %-12s %10s %8s\n", "Agent Name", "Seconds", "Slowdown");

  const std::vector<ia::bench::WorkloadResult> results =
      ia::bench::TimeWorkloadsInterleaved(Setup, spawn, configs, config);
  const double baseline = results[0].mean_seconds;
  for (size_t i = 0; i < configs.size(); ++i) {
    ia::bench::PrintSlowdownRow(configs[i].name, results[i], baseline);
  }

  // Where the (few) syscalls of this compute-dominated run spend their kernel
  // time — the contrast with Table 3-3's fork/exec-heavy profile is the point.
  ia::bench::PrintTopSyscallDeltas("bare", results[0]);
  return 0;
}
