// Table 3-3: "Time to make 8 programs" — a syscall-heavy, multi-process workload
// (64 fork/exec pairs in the paper) run bare and under three agents.
//
//   Paper (25 MHz i486, base 16.0 s):
//     none   16.0 s        -
//     timex  19.0 s      +19%
//     union  29.0 s      +82%
//     trace  33.0 s     +107%
//
// Shape claims: syscall-dense multi-process work makes agent overhead large;
// ordering none < timex < union < trace; fork/exec propagation dominates even
// the minimal (timex) agent's overhead.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/agents/timex.h"
#include "src/agents/trace.h"
#include "src/agents/union_fs.h"
#include "src/apps/apps.h"

namespace {

void Setup(ia::Kernel& kernel) {
  ia::InstallStandardPrograms(kernel);
  ia::SetupMakeWorkload(kernel, /*programs=*/8);
}

}  // namespace

int main() {
  ia::KernelConfig config;
  // The build does some real work per phase, but is dominated by system calls
  // and process management, like the paper's run.
  config.compute_spin_scale = 0.15;

  ia::SpawnOptions spawn;
  spawn.path = "/bin/make";
  spawn.argv = {"make"};
  spawn.cwd = "/home/mbj/progs";

  const std::vector<ia::UnionMount> mounts = {{"/union", {"/usr/lib", "/usr/bin"}}};
  const std::vector<ia::bench::NamedConfig> configs = {
      {"none", nullptr},
      {"timex",
       [] { return std::vector<ia::AgentRef>{std::make_shared<ia::TimexAgent>(3600)}; }},
      {"union",
       [&mounts] {
         return std::vector<ia::AgentRef>{std::make_shared<ia::UnionAgent>(mounts)};
       }},
      {"trace",
       [] {
         return std::vector<ia::AgentRef>{std::make_shared<ia::TraceAgent>(
             ia::TraceOptions{.log_path = "/tmp/t.log"})};
       }},
  };

  std::printf("Table 3-3: Time to make 8 programs\n");
  std::printf("(average of 9 interleaved runs after 1 discarded; paper: +19%% / +82%% / +107%%)\n\n");
  std::printf("  %-12s %10s %8s\n", "Agent Name", "Seconds", "Slowdown");

  const std::vector<ia::bench::WorkloadResult> results =
      ia::bench::TimeWorkloadsInterleaved(Setup, spawn, configs, config);
  const double baseline = results[0].mean_seconds;
  for (size_t i = 0; i < configs.size(); ++i) {
    ia::bench::PrintSlowdownRow(configs[i].name, results[i], baseline);
  }

  // Where the build's kernel time goes: the dispatcher's own per-syscall
  // counters, bare vs under the heaviest agent. For a fork/exec-dense workload
  // the process-management calls should dominate both columns, and the trace
  // column shows what interposition adds on top.
  ia::bench::PrintTopSyscallDeltas("bare", results[0]);
  ia::bench::PrintTopSyscallDeltas("under trace", results[3]);
  return 0;
}
