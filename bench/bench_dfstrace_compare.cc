// Section 3.5.3: "Comparison to a Best Available Implementation" — the in-kernel
// DFSTrace collection (compiled into the kernel syscall path; here src/kernel/
// ktrace) versus the agent-based dfs_trace on the Andrew-style filesystem
// benchmark, plus the code-size comparison.
//
//   Paper: in-kernel tracing 3.0% slowdown; agent-based 64% slowdown.
//          Code size: kernel-based 1627 statements (26 modified kernel files,
//          4 machine-dependent files/machine); agent-based 1584 statements,
//          no kernel modifications, machine independent.
//
// Shape claims: both collect equivalent file-reference records; the in-kernel
// implementation is much cheaper at run time; the agent implementation is
// comparable in size and required no kernel changes.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/agents/dfs_trace.h"
#include "src/apps/apps.h"
#include "src/kernel/ktrace.h"

namespace {

void Setup(ia::Kernel& kernel) {
  ia::InstallStandardPrograms(kernel);
  ia::SetupAndrewTree(kernel, "/usr/andrew", /*files=*/40, /*subdirs=*/5);
}

ia::SpawnOptions AndrewSpawn() {
  ia::SpawnOptions spawn;
  spawn.path = "/usr/bin/andrew";
  spawn.argv = {"andrew", "/usr/andrew", "/tmp/andrew"};
  return spawn;
}

double TimeRuns(bool use_ktrace, const ia::bench::AgentFactory& factory, int64_t* records) {
  ia::RunningStats stats;
  constexpr int kRuns = 9;
  for (int run = 0; run <= kRuns; ++run) {
    // The AFS benchmark the paper used does real work between file references;
    // give Compute() weight so tracing cost is measured against a busy client.
    ia::KernelConfig config;
    config.compute_spin_scale = 0.5;
    ia::Kernel kernel(config);
    Setup(kernel);
    // The original DFSTrace logged into a fixed-size kernel buffer, not an
    // unbounded one; the ring sink reproduces that (and keeps long runs from
    // growing without bound). Capacity is sized to hold a full Andrew run.
    ia::RingKtraceSink sink(1 << 16);
    if (use_ktrace) {
      kernel.SetKtrace(&sink);
    }
    const std::vector<ia::AgentRef> agents =
        factory != nullptr ? factory() : std::vector<ia::AgentRef>{};
    const ia::SpawnOptions spawn = AndrewSpawn();
    const int64_t start = ia::MonotonicMicros();
    const int status = agents.empty() ? kernel.HostWaitPid(kernel.Spawn(spawn))
                                      : RunUnderAgents(kernel, agents, spawn);
    const double elapsed = static_cast<double>(ia::MonotonicMicros() - start) / 1e6;
    if (!ia::WifExited(status) || ia::WExitStatus(status) != 0) {
      std::fprintf(stderr, "andrew failed\n");
    }
    if (run > 0) {
      stats.Add(elapsed);
    }
    if (use_ktrace && records != nullptr) {
      *records = static_cast<int64_t>(sink.total_recorded());
      if (sink.dropped() != 0) {
        std::fprintf(stderr, "ktrace ring overflow: %llu records dropped\n",
                     static_cast<unsigned long long>(sink.dropped()));
      }
    }
  }
  return stats.Median();
}

}  // namespace

int main() {
  std::printf("Section 3.5.3: DFSTrace — in-kernel vs agent-based file reference tracing\n");
  std::printf("(Andrew-style workload; paper: kernel 3.0%% vs agent 64%% slowdown)\n\n");

  // Global warm-up so the first timed configuration doesn't absorb allocator and
  // page-cache cold-start costs.
  {
    ia::Kernel kernel;
    Setup(kernel);
    kernel.HostWaitPid(kernel.Spawn(AndrewSpawn()));
  }

  int64_t kernel_records = 0;
  const double base_s = TimeRuns(false, nullptr, nullptr);
  const double ktrace_s = TimeRuns(true, nullptr, &kernel_records);

  int64_t agent_records = 0;
  std::shared_ptr<ia::DfsTraceAgent> last_agent;
  const double agent_s = TimeRuns(false,
                                  [&last_agent] {
                                    last_agent =
                                        std::make_shared<ia::DfsTraceAgent>("/tmp/dfs.log");
                                    return std::vector<ia::AgentRef>{last_agent};
                                  },
                                  nullptr);
  if (last_agent != nullptr) {
    agent_records = last_agent->records_written();
  }

  std::printf("  %-22s %10s %10s %12s\n", "Configuration", "Seconds", "Slowdown", "Records");
  std::printf("  %-22s %10.4f %10s %12s\n", "no tracing", base_s, "-", "-");
  std::printf("  %-22s %10.4f %9.1f%% %12lld\n", "in-kernel (ktrace)", ktrace_s,
              ia::PercentSlowdown(base_s, ktrace_s), static_cast<long long>(kernel_records));
  std::printf("  %-22s %10.4f %9.1f%% %12lld\n", "agent (dfs_trace)", agent_s,
              ia::PercentSlowdown(base_s, agent_s), static_cast<long long>(agent_records));

  // Code-size comparison (statements = semicolons, as in Table 3-1).
  const int kernel_stmts = ia::bench::CountSemicolonsInFiles(
      {"src/kernel/ktrace.h", "src/kernel/ktrace.cc"});
  // Plus the collection hook compiled into kernel.cc — count its share as the
  // records block (~30 statements); report the dedicated files and note it.
  const int agent_stmts = ia::bench::CountSemicolonsInFiles(
      {"src/agents/dfs_trace.h", "src/agents/dfs_trace.cc"});

  std::printf("\nCode size (semicolon statements; paper: kernel 1627 vs agent 1584):\n");
  std::printf("  in-kernel implementation: %4d statements + hooks inside kernel.cc,\n",
              kernel_stmts);
  std::printf("      requires modifying the kernel source (DoSyscall path)\n");
  std::printf("  agent implementation:     %4d statements, zero kernel modifications,\n",
              agent_stmts);
  std::printf("      loadable against unmodified binaries\n");

  std::printf("\nShape checks:\n");
  std::printf("  in-kernel tracing much cheaper than agent tracing:  %s\n",
              (ktrace_s - base_s) < (agent_s - base_s) ? "yes" : "NO");
  std::printf("  both implementations collect the same event stream: %s\n",
              kernel_records > 0 && agent_records > 0 ? "yes" : "NO");
  return 0;
}
