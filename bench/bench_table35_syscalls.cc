// Table 3-5: "Performance of System Calls" — common calls measured without
// interposition and under time_symbolic, a pass-through agent that intercepts
// every call, decodes it into a C++ virtual method, and takes the default action
// (forward to the next-lower interface). The difference column is the minimum
// toolkit overhead per intercepted call.
//
//   Paper (µs): getpid 25/..., gettimeofday 47/..., fstat ~90, read 1K 370,
//   stat (6 components) 892; symbolic-layer overhead ~140-210 µs per call;
//   fork()+wait()+_exit() and execve() gain ~10 ms (roughly doubling).
//
// Shape claims: interception adds a near-constant per-call overhead — dominant
// for cheap calls (getpid), modest for calls that do real work (stat, read);
// fork and execve pay much more because the toolkit must propagate itself into
// children and reimplement exec.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/apps.h"
#include "src/toolkit/toolkit.h"

namespace {

// The paper's time_symbolic agent: full symbolic decode, default actions only.
class TimeSymbolicAgent final : public ia::SymbolicSyscall {
 public:
  std::string name() const override { return "time_symbolic"; }
};

// A pass-through pathname-abstraction agent that keeps its table-derived
// footprint (kTakesPath rows plus fd lifecycle) — the pay-per-use comparison
// point: numbers outside the footprint never climb into its frame.
class PathnameFootprintAgent final : public ia::PathnameSet {
 public:
  std::string name() const override { return "pathname_footprint"; }
};

struct Row {
  const char* label;
  std::function<void(ia::ProcessContext&)> op;
  int iterations;
};

void SetupWorld(ia::Kernel& kernel) {
  ia::InstallStandardPrograms(kernel);
  // A six-component pathname in the filesystem, as the paper measured. Each
  // directory on the walk gets realistic population — the paper's 892 µs stat
  // walked real directories, not single-entry ones — which is also what makes
  // the name-cache rows below meaningful.
  kernel.fs().MkdirAll("/a/b/c/d/e");
  const char* levels[] = {"/a", "/a/b", "/a/b/c", "/a/b/c/d", "/a/b/c/d/e"};
  for (const char* dir : levels) {
    for (int i = 0; i < 256; ++i) {
      kernel.fs().InstallFile(std::string(dir) + "/entry-" + std::to_string(i), "");
    }
  }
  kernel.fs().InstallFile("/a/b/c/d/e/f", std::string(4096, 'x'));
}

}  // namespace

int main() {
  char read_buf[1024];

  const Row rows[] = {
      {"getpid()",
       [](ia::ProcessContext& ctx) { ctx.Getpid(); },
       100000},
      {"gettimeofday()",
       [](ia::ProcessContext& ctx) {
         ia::TimeVal tv;
         ctx.Gettimeofday(&tv, nullptr);
       },
       100000},
      {"fstat()",
       [](ia::ProcessContext& ctx) {
         static thread_local int fd = -1;
         if (fd < 0) {
           fd = ctx.Open("/a/b/c/d/e/f", ia::kORdonly);
         }
         ia::Stat st;
         ctx.Fstat(fd, &st);
       },
       100000},
      {"read() 1K of data",
       [&read_buf](ia::ProcessContext& ctx) {
         static thread_local int fd = -1;
         if (fd < 0) {
           fd = ctx.Open("/a/b/c/d/e/f", ia::kORdonly);
         }
         ctx.Lseek(fd, 0, ia::kSeekSet);
         ctx.Read(fd, read_buf, sizeof(read_buf));
       },
       50000},
      {"stat() [6 components]",
       [](ia::ProcessContext& ctx) {
         ia::Stat st;
         ctx.Stat("/a/b/c/d/e/f", &st);
       },
       50000},
      {"fork(), wait(), _exit()",
       [](ia::ProcessContext& ctx) {
         const ia::Pid child = ctx.Fork([](ia::ProcessContext&) { return 0; });
         int status = 0;
         ctx.Wait4(child, &status, 0, nullptr);
       },
       400},
      {"execve()",
       [](ia::ProcessContext& ctx) {
         int status = 0;
         ctx.Spawn("/bin/true", {"true"}, &status);
       },
       400},
  };

  std::printf("Table 3-5: Performance measurements of individual system calls\n");
  std::printf("(µs per call; 'with agent' = pass-through time_symbolic)\n\n");
  std::printf("  %-26s %12s %12s %12s\n", "Operation", "without", "with agent", "overhead");

  for (const Row& row : rows) {
    // Minimum of three measurements per cell: host scheduling noise (thread
    // creation in fork/exec) only ever adds time.
    double without_us = 1e18;
    double with_us = 1e18;
    for (int attempt = 0; attempt < 3; ++attempt) {
      ia::Kernel bare;
      SetupWorld(bare);
      without_us = std::min(
          without_us, ia::bench::MeasurePerCallMicros(bare, {}, row.op, row.iterations));

      ia::Kernel interposed;
      SetupWorld(interposed);
      with_us = std::min(with_us, ia::bench::MeasurePerCallMicros(
                                      interposed, {std::make_shared<TimeSymbolicAgent>()},
                                      row.op, row.iterations));
    }

    std::printf("  %-26s %10.3f µs %10.3f µs %10.3f µs\n", row.label, without_us, with_us,
                with_us - without_us);
  }

  std::printf(
      "\nShape notes: the overhead column should be roughly constant for the\n"
      "simple calls, a large multiple of getpid()'s base cost, a small fraction\n"
      "of fork/execve's base cost — and fork/execve overhead should be far larger\n"
      "in absolute terms (agent propagation / exec reimplementation).\n");

  // --- pay-per-use rows: table-derived footprint vs whole interface ---------
  // The same cheap calls under (a) no agent, (b) a pass-through pathname-layer
  // agent whose interest set is derived from the syscall table's abstraction
  // flags, (c) the whole-interface time_symbolic agent. Rows outside the
  // pathname footprint (getpid, gettimeofday, read) should sit at the no-agent
  // cost under (b); stat() pays the frame either way.
  const Row ppu_rows[] = {
      {"getpid()",
       [](ia::ProcessContext& ctx) { ctx.Getpid(); },
       100000},
      {"gettimeofday()",
       [](ia::ProcessContext& ctx) {
         ia::TimeVal tv;
         ctx.Gettimeofday(&tv, nullptr);
       },
       100000},
      {"read() 1K of data",
       [&read_buf](ia::ProcessContext& ctx) {
         static thread_local int fd = -1;
         if (fd < 0) {
           fd = ctx.Open("/a/b/c/d/e/f", ia::kORdonly);
         }
         ctx.Lseek(fd, 0, ia::kSeekSet);
         ctx.Read(fd, read_buf, sizeof(read_buf));
       },
       50000},
      {"stat() [6 components]",
       [](ia::ProcessContext& ctx) {
         ia::Stat st;
         ctx.Stat("/a/b/c/d/e/f", &st);
       },
       50000},
  };

  std::printf("\nPay-per-use: pathname-footprint agent vs whole-interface agent:\n");
  std::printf("  %-26s %12s %12s %12s\n", "Operation", "without", "pathname fp",
              "whole iface");
  for (const Row& row : ppu_rows) {
    double bare_us = 1e18;
    double narrowed_us = 1e18;
    double full_us = 1e18;
    for (int attempt = 0; attempt < 3; ++attempt) {
      ia::Kernel bare;
      SetupWorld(bare);
      bare_us = std::min(bare_us,
                         ia::bench::MeasurePerCallMicros(bare, {}, row.op, row.iterations));

      ia::Kernel narrowed;
      SetupWorld(narrowed);
      narrowed_us = std::min(
          narrowed_us,
          ia::bench::MeasurePerCallMicros(narrowed,
                                          {std::make_shared<PathnameFootprintAgent>()},
                                          row.op, row.iterations));

      ia::Kernel full;
      SetupWorld(full);
      full_us = std::min(full_us, ia::bench::MeasurePerCallMicros(
                                      full, {std::make_shared<TimeSymbolicAgent>()},
                                      row.op, row.iterations));
    }
    std::printf("  %-26s %10.3f µs %10.3f µs %10.3f µs\n", row.label, bare_us, narrowed_us,
                full_us);
  }
  std::printf(
      "\nShape: the first three rows are outside the pathname footprint, so the\n"
      "middle column matches 'without'; stat() is a kTakesPath row and pays the\n"
      "decode+frame cost in both agent columns. Interposition costs what you\n"
      "declare interest in — nothing more.\n");

  // --- pathname rows, DNLC off vs on ---------------------------------------
  // The paper's expensive rows are the pathname calls (stat at 892 cost units
  // walks six components). The directory name-lookup cache is the kernel-side
  // fast path for exactly these rows; report them in both states.
  const Row path_rows[] = {
      {"stat() [6 components]",
       [](ia::ProcessContext& ctx) {
         ia::Stat st;
         ctx.Stat("/a/b/c/d/e/f", &st);
       },
       50000},
      {"access() [6 components]",
       [](ia::ProcessContext& ctx) { ctx.Access("/a/b/c/d/e/f", ia::kROk); },
       50000},
      {"open()+close()",
       [](ia::ProcessContext& ctx) {
         const int fd = ctx.Open("/a/b/c/d/e/f", ia::kORdonly);
         ctx.Close(fd);
       },
       30000},
  };

  std::printf("\nPathname rows with the directory name-lookup cache off/on (no agent):\n");
  std::printf("  %-26s %12s %12s %10s\n", "Operation", "cache off", "cache on", "speedup");
  for (const Row& row : path_rows) {
    double off_us = 1e18;
    double on_us = 1e18;
    for (int attempt = 0; attempt < 3; ++attempt) {
      ia::Kernel without;
      SetupWorld(without);
      without.fs().namecache().set_enabled(false);
      off_us =
          std::min(off_us, ia::bench::MeasurePerCallMicros(without, {}, row.op, row.iterations));

      ia::Kernel with;
      SetupWorld(with);
      on_us = std::min(on_us, ia::bench::MeasurePerCallMicros(with, {}, row.op, row.iterations));
    }
    std::printf("  %-26s %10.3f µs %10.3f µs %9.2fx\n", row.label, off_us, on_us,
                off_us / on_us);
  }
  std::printf(
      "\nShape: stat()/access() should be modestly faster with the cache on\n"
      "(resolution is only part of a full syscall round trip); open()+close()\n"
      "sits near parity because fd setup dominates it. bench_namecache holds\n"
      "the self-checked 1.3x gate on the resolution-dominated workload.\n");

  // --- kernel per-syscall stats ----------------------------------------------
  // One last run of the paper's workload mix against a single kernel, reported
  // through Kernel::SyscallStats() — the per-number counters kept by the
  // dispatcher itself (counts, errors, virtual time).
  {
    ia::Kernel kernel;
    SetupWorld(kernel);
    for (const Row& row : rows) {
      ia::bench::MeasurePerCallMicros(kernel, {}, row.op, row.iterations / 10);
    }
    const auto stats = kernel.SyscallStats();
    std::printf("\nKernel per-syscall stats for the workload mix above:\n");
    std::printf("  %10s %10s %14s  %s\n", "calls", "errors", "vtime(us)", "syscall");
    for (int number = 0; number < ia::kMaxSyscall; ++number) {
      const auto& stat = stats[static_cast<size_t>(number)];
      if (stat.calls == 0) {
        continue;
      }
      std::printf("  %10lld %10lld %14lld  %s\n", static_cast<long long>(stat.calls),
                  static_cast<long long>(stat.errors), static_cast<long long>(stat.vtime_usec),
                  std::string(ia::SyscallName(number)).c_str());
    }
  }
  return 0;
}
