// Table 3-4: "Performance of Low Level Operations" — the primitive costs that
// bound every interposition agent.
//
//   Paper (25 MHz i486, Mach 2.5):
//     C procedure call with 1 arg, result          1.22 µs
//     C++ virtual procedure call with 1 arg        1.94 µs
//     Intercept and return from system call          30 µs
//     htg_unix_syscall() overhead                     37 µs
//
// Shape claims: virtual dispatch costs slightly more than a plain call (both
// trivial); intercepting a call and returning costs tens of plain calls; making
// a call on the next-lower interface from agent code adds a comparable constant.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "src/toolkit/toolkit.h"

namespace {

// --- plain vs virtual procedure call ----------------------------------------

int __attribute__((noinline)) PlainCall(int x) {
  benchmark::ClobberMemory();
  return x + 1;
}

class CallInterface {
 public:
  virtual ~CallInterface() = default;
  virtual int Call(int x) = 0;
};

class CallImplA final : public CallInterface {
 public:
  __attribute__((noinline)) int Call(int x) override {
    benchmark::ClobberMemory();
    return x + 1;
  }
};

class CallImplB final : public CallInterface {
 public:
  __attribute__((noinline)) int Call(int x) override {
    benchmark::ClobberMemory();
    return x + 2;
  }
};

// Defeats devirtualization: the dynamic type depends on a runtime value.
CallInterface* MakeImpl(int selector) {
  static CallImplA a;
  static CallImplB b;
  return selector % 2 == 0 ? static_cast<CallInterface*>(&a)
                           : static_cast<CallInterface*>(&b);
}

double MeasurePlainCall() {
  volatile int acc = 0;
  constexpr int kIters = 5'000'000;
  const int64_t start = ia::MonotonicMicros();
  for (int i = 0; i < kIters; ++i) {
    acc = PlainCall(acc);
  }
  return static_cast<double>(ia::MonotonicMicros() - start) / kIters;
}

double MeasureVirtualCall(int selector) {
  CallInterface* iface = MakeImpl(selector);
  benchmark::DoNotOptimize(iface);
  volatile int acc = 0;
  constexpr int kIters = 5'000'000;
  const int64_t start = ia::MonotonicMicros();
  for (int i = 0; i < kIters; ++i) {
    acc = iface->Call(acc);
  }
  return static_cast<double>(ia::MonotonicMicros() - start) / kIters;
}

// --- intercept and return -----------------------------------------------------

// Handles a synthetic syscall number entirely in the agent: the pure cost of the
// interception path (dispatch in, dispatch out), no kernel work.
constexpr int kSyntheticSyscall = ia::kMaxSyscall - 1;

class InterceptOnlyAgent final : public ia::NumericSyscall {
 public:
  std::string name() const override { return "intercept_only"; }

 protected:
  void init(ia::ProcessContext&) override { register_interest(kSyntheticSyscall); }
  ia::SyscallStatus syscall(ia::AgentCall& call) override {
    if (call.number() == kSyntheticSyscall) {
      return 0;  // handled without entering the kernel
    }
    return call.CallDown();
  }
};

}  // namespace

int main() {
  std::printf("Table 3-4: Performance measurements of individual low-level operations\n");
  std::printf("(paper: 1.22 / 1.94 / 30 / 37 µs)\n\n");

  const double plain_us = MeasurePlainCall();
  const double virtual_us = MeasureVirtualCall(static_cast<int>(ia::MonotonicMicros() & 1));

  ia::Kernel kernel;

  // Intercept-and-return: agent handles the call without kernel involvement.
  const double intercept_us = ia::bench::MeasurePerCallMicros(
      kernel, {std::make_shared<InterceptOnlyAgent>()},
      [](ia::ProcessContext& ctx) {
        ia::SyscallArgs args;
        ctx.Syscall(kSyntheticSyscall, args, nullptr);
      },
      200000);

  // htg_unix_syscall() overhead: getpid made from agent level on the next-lower
  // interface vs. getpid trapped directly. Minimum of several attempts: host
  // scheduling noise only ever adds time.
  double direct_getpid_us = 1e18;
  double lower_getpid_us = 1e18;
  for (int attempt = 0; attempt < 3; ++attempt) {
    direct_getpid_us = std::min(
        direct_getpid_us, ia::bench::MeasurePerCallMicros(
                              kernel, {},
                              [](ia::ProcessContext& ctx) {
                                ia::SyscallArgs args;
                                ia::SyscallResult rv;
                                ctx.TrapKernel(ia::kSysGetpid, args, &rv);
                              },
                              200000));
    lower_getpid_us = std::min(
        lower_getpid_us, ia::bench::MeasurePerCallMicros(
                             kernel, {std::make_shared<InterceptOnlyAgent>()},
                             [](ia::ProcessContext& ctx) {
                               // An agent-frame call on the next-lower interface
                               // (frame 0 installed).
                               ia::DownApi api(ctx, 0);
                               api.Getpid();
                             },
                             200000));
  }
  const double htg_overhead_us = lower_getpid_us - direct_getpid_us;

  std::printf("  %-52s %10.3f µs\n", "C procedure call with 1 arg, result", plain_us);
  std::printf("  %-52s %10.3f µs\n", "C++ virtual procedure call with 1 arg, result",
              virtual_us);
  std::printf("  %-52s %10.3f µs\n", "Intercept and return from system call", intercept_us);
  std::printf("  %-52s %10.3f µs\n", "htg_unix_syscall() overhead", htg_overhead_us);

  std::printf("\nShape checks:\n");
  std::printf("  virtual call >= plain call:                       %s\n",
              virtual_us >= plain_us * 0.9 ? "yes" : "NO");
  std::printf("  intercept+return >> procedure call:               %s\n",
              intercept_us > 5 * virtual_us ? "yes" : "NO");
  // The overhead is the difference of two ~0.1 µs measurements; allow noise in
  // the sign but insist it is small (the paper's point: a bounded constant).
  std::printf("  call-down overhead is a small constant:           %s\n",
              htg_overhead_us > -0.2 && htg_overhead_us < 5.0 ? "yes" : "NO");
  return 0;
}
